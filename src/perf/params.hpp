// Performance-model parameters (Figure 11) and paper-reported reference
// values.
#pragma once

#include "support/units.hpp"

namespace hyades::perf {

// PS-phase parameters: tps = Nps*nxyz/Fps + 5*texchxyz  (Eqs. 4-6).
struct PhaseParams {
  double nps = 0;             // flops per grid cell per PS phase
  double nxyz = 0;            // 3-D grid cells per processor
  Microseconds texchxyz = 0;  // 3-D exchange, one field
  double fps_mflops = 0;      // sustained PS kernel rate
};

// DS-phase parameters: tds = Nds*nxy/Fds + 2*texchxy + 2*tgsum (Eqs. 7-10).
struct DsParams {
  double nds = 0;            // flops per column per solver iteration
  double nxy = 0;            // columns per processor
  Microseconds tgsum = 0;    // one global sum
  Microseconds texchxy = 0;  // 2-D exchange, one field
  double fds_mflops = 0;     // sustained DS kernel rate
};

struct PerfParams {
  PhaseParams ps;
  DsParams ds;
};

// Figure 11, verbatim: coupled ocean-atmosphere simulation at 2.8125
// degrees, each isomorph on sixteen processors over eight SMPs.
PerfParams paper_atmosphere();
PerfParams paper_ocean();

// Section 5.3's validation run: a one-year atmospheric simulation.
inline constexpr long kPaperNt = 77760;   // steps per simulated year
inline constexpr double kPaperNi = 60.0;  // mean CG iterations per step

// Figure 12's alternative-interconnect primitive costs (measured values
// the paper reports for MPI on Ethernet).
struct InterconnectCosts {
  Microseconds tgsum, texchxy, texchxyz;
};
InterconnectCosts paper_fast_ethernet();
InterconnectCosts paper_gigabit_ethernet();
InterconnectCosts paper_arctic();

// Figure 10's reference rows: sustained GFlop/s of the ocean isomorph on
// contemporary vector machines (paper-reported, not measured here).
struct ReferenceMachine {
  const char* name;
  int processors;
  double sustained_gflops;
};
inline constexpr ReferenceMachine kVectorMachines[] = {
    {"Cray Y-MP", 1, 0.4}, {"Cray Y-MP", 4, 1.5}, {"Cray C90", 1, 0.6},
    {"Cray C90", 4, 2.2},  {"NEC SX-4", 1, 0.7},  {"NEC SX-4", 4, 2.7},
};
inline constexpr double kPaperHyades1 = 0.054;   // GFlop/s, 1 processor
inline constexpr double kPaperHyades16 = 0.8;    // GFlop/s, 16 processors

// Section 6's HPVM/Myrinet comparison points.
inline constexpr Microseconds kHpvmBarrier16 = 50.0;  // ">50 usec"
inline constexpr double kHpvm1KBandwidth = 42.0;      // MByte/s @ 1 KB

}  // namespace hyades::perf
