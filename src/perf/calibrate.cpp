#include "perf/calibrate.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/runtime.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"
#include "comm/comm.hpp"
#include "gcm/halo.hpp"
#include "gcm/model.hpp"

namespace hyades::perf {

namespace {

cluster::MachineConfig machine(const net::Interconnect& net,
                               const MachineShape& shape) {
  cluster::MachineConfig mc;
  mc.smp_count = shape.smps;
  mc.procs_per_smp = shape.procs_per_smp;
  mc.interconnect = &net;
  return mc;
}

// Tile shape for a 16-rank 2.8125-degree run: 4x4 tiles of 32x16.
gcm::ModelConfig exchange_config(int nranks, int nz) {
  gcm::ModelConfig cfg = gcm::ocean_preset(1, 1);
  cfg.nz = nz;
  // Choose a near-square tile grid.
  int px = 1;
  while (px * px < nranks) px *= 2;
  cfg.px = px;
  cfg.py = nranks / px;
  cfg.validate();
  return cfg;
}

}  // namespace

PrimitiveCosts measure_primitives(const net::Interconnect& net,
                                  MachineShape shape, int repetitions) {
  PrimitiveCosts costs;

  // ---- global sum --------------------------------------------------------
  {
    cluster::Runtime rt(machine(net, shape));
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      for (int i = 0; i < repetitions; ++i) (void)comm.global_sum(1.0);
    });
    costs.tgsum = rt.max_clock() / repetitions;
  }

  // ---- exchanges -----------------------------------------------------------
  auto exchange_cost = [&](int nz, int width) {
    const gcm::ModelConfig cfg = exchange_config(shape.nranks(), nz);
    cluster::Runtime rt(machine(net, shape));
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      const gcm::Decomp dec(cfg, comm.group_rank());
      Array3D<double> f(static_cast<std::size_t>(dec.ext_x()),
                        static_cast<std::size_t>(dec.ext_y()),
                        static_cast<std::size_t>(nz), 1.0);
      for (int i = 0; i < repetitions; ++i) {
        gcm::exchange3d(comm, dec, f, width);
      }
    });
    return rt.max_clock() / repetitions;
  };

  costs.texchxy = exchange_cost(/*nz=*/1, /*width=*/1);
  costs.texchxyz_atmos = exchange_cost(10, 3);
  costs.texchxyz_ocean = exchange_cost(30, 3);
  return costs;
}

ModelMeasurement measure_model(const gcm::ModelConfig& cfg,
                               const net::Interconnect& net,
                               MachineShape shape, int steps, int warmup,
                               TraceCapture* capture) {
  if (cfg.tiles() != shape.nranks()) {
    throw std::invalid_argument("measure_model: tiles != ranks");
  }
  ModelMeasurement m;
  m.steps = steps;
  if (capture != nullptr) {
    capture->tracers.assign(static_cast<std::size_t>(shape.nranks()),
                            cluster::Tracer{});
    capture->acct.assign(static_cast<std::size_t>(shape.nranks()),
                         cluster::Accounting{});
    capture->procs_per_smp = shape.procs_per_smp;
    capture->steps = steps;
  }

  cluster::Runtime rt(machine(net, shape));
  // Cross-rank reduction state; every rank-thread folds its window into
  // these under the mutex (rank 0 also fills `m` in the same section).
  struct Shared {
    support::Mutex mu;
    double total_flops GUARDED_BY(mu) = 0;
    Microseconds window_us GUARDED_BY(mu) = 0;
    double busiest GUARDED_BY(mu) = 0;
  } sh;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    gcm::Model model(cfg, comm);
    model.initialize();
    for (int s = 0; s < warmup; ++s) (void)model.step();
    const gcm::PerfObservables obs0 = model.stepper().observables();
    const double flops0 = ctx.accounting().flops;
    const Microseconds clock0 = ctx.clock().now();
    const cluster::Accounting acct0 = ctx.accounting();
    if (capture != nullptr) {
      // Attach after warmup: spans cover only the measured window.
      ctx.set_tracer(&capture->tracers[static_cast<std::size_t>(ctx.rank())]);
    }
    for (int s = 0; s < steps; ++s) (void)model.step();
    if (capture != nullptr) {
      const cluster::Accounting& a = ctx.accounting();
      cluster::Accounting& d =
          capture->acct[static_cast<std::size_t>(ctx.rank())];
      d.compute_us = a.compute_us - acct0.compute_us;
      d.comm_us = a.comm_us - acct0.comm_us;
      d.overlap_us = a.overlap_us - acct0.overlap_us;
      d.imbalance_us = a.imbalance_us - acct0.imbalance_us;
      d.flops = a.flops - acct0.flops;
      ctx.set_tracer(nullptr);
    }
    const gcm::PerfObservables& obs = model.stepper().observables();
    const double rank_flops = ctx.accounting().flops - flops0;
    const Microseconds rank_us = ctx.clock().now() - clock0;

    support::MutexLock lock(sh.mu);
    sh.total_flops += rank_flops;
    sh.window_us = std::max(sh.window_us, rank_us);
    sh.busiest = std::max(sh.busiest, rank_us > 0 ? rank_flops / rank_us : 0.0);
    if (comm.group_rank() == 0) {
      // Figure 11 normalizes by the full per-processor cell count.
      const double cells =
          static_cast<double>(model.decomp().snx) * model.decomp().sny *
          cfg.nz;
      const double cols =
          static_cast<double>(model.decomp().snx) * model.decomp().sny;
      const long iters = obs.cg_iterations - obs0.cg_iterations;
      m.wet_cells = model.grid().wet_cells();
      m.wet_columns = model.grid().wet_columns();
      m.ni = static_cast<double>(iters) / steps;
      m.tps_us = (obs.tps_us - obs0.tps_us) / steps;
      m.tps_exch_us = (obs.tps_exch_us - obs0.tps_exch_us) / steps;
      m.tds_us = (obs.tds_us - obs0.tds_us) / steps;
      m.params.ps.nps = (obs.ps_flops - obs0.ps_flops) / steps / cells;
      m.params.ps.nxyz = cells;
      m.params.ps.texchxyz = m.tps_exch_us / 5.0;
      m.params.ps.fps_mflops = cfg.fps_mflops;
      m.params.ds.nds =
          iters > 0
              ? (obs.ds_flops - obs0.ds_flops) / static_cast<double>(iters) /
                    cols
              : 0.0;
      m.params.ds.nxy = cols;
      m.params.ds.fds_mflops = cfg.fds_mflops;
    }
  });

  // Fold in the stand-alone primitive costs for the DS column (as the
  // paper does: "the exchange and global sum cost is determined using
  // stand-alone benchmarks").
  const PrimitiveCosts prims = measure_primitives(net, shape, 8);
  m.params.ds.tgsum = prims.tgsum;
  m.params.ds.texchxy = prims.texchxy;

  // Threads have joined; the lock is uncontended but keeps the
  // GUARDED_BY contract (and the thread-safety analysis) honest.
  support::MutexLock lock(sh.mu);
  m.step_us = sh.window_us / steps;
  m.per_proc_mflops = sh.busiest;
  m.aggregate_gflops =
      sh.window_us > 0 ? sh.total_flops / sh.window_us / 1.0e3 : 0.0;
  if (capture != nullptr) capture->window_us = sh.window_us;
  return m;
}

}  // namespace hyades::perf
