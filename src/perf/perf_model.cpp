#include "perf/perf_model.hpp"

namespace hyades::perf {

PerfParams paper_atmosphere() {
  PerfParams p;
  p.ps = {781.0, 5120.0, 1640.0, 50.0};
  p.ds = {36.0, 1024.0, 13.5, 115.0, 60.0};
  return p;
}

PerfParams paper_ocean() {
  PerfParams p;
  p.ps = {751.0, 15360.0, 4573.0, 50.0};
  p.ds = {36.0, 1024.0, 13.5, 115.0, 60.0};
  return p;
}

InterconnectCosts paper_fast_ethernet() { return {942.0, 10008.0, 100000.0}; }
InterconnectCosts paper_gigabit_ethernet() { return {1193.0, 1789.0, 5742.0}; }
InterconnectCosts paper_arctic() { return {13.5, 115.0, 1640.0}; }

Microseconds tps_compute(const PhaseParams& p) {
  return p.nps * p.nxyz / p.fps_mflops;  // Eq. (5); MFlop/s == flops/us
}
Microseconds tps_exch(const PhaseParams& p) {
  return 5.0 * p.texchxyz;  // Eq. (6): five 3-D state fields
}
Microseconds tps(const PhaseParams& p) {
  return tps_compute(p) + tps_exch(p);  // Eq. (4)
}

Microseconds tps_exch_effective(const PhaseParams& p,
                                Microseconds t_interior) {
  const Microseconds hidden = tps_exch(p) - t_interior;
  return hidden > 0 ? hidden : 0.0;
}
Microseconds tps_exch_effective(const PhaseParams& p, Microseconds t_interior,
                                Microseconds t_exch_cpu) {
  const Microseconds eff = tps_exch_effective(p, t_interior);
  return eff > t_exch_cpu ? eff : t_exch_cpu;
}
Microseconds tps_overlap(const PhaseParams& p, Microseconds t_interior) {
  return tps_compute(p) + tps_exch_effective(p, t_interior);
}
Microseconds tps_overlap(const PhaseParams& p, Microseconds t_interior,
                         Microseconds t_exch_cpu) {
  return tps_compute(p) + tps_exch_effective(p, t_interior, t_exch_cpu);
}
Microseconds trun_overlap(const PerfParams& p, long nt, double ni,
                          Microseconds t_interior) {
  return static_cast<double>(nt) * tps_overlap(p.ps, t_interior) +
         static_cast<double>(nt) * ni * tds(p.ds);
}

Microseconds tds_compute(const DsParams& p) {
  return p.nds * p.nxy / p.fds_mflops;  // Eq. (8)
}
Microseconds tds_exch(const DsParams& p) { return 2.0 * p.texchxy; }  // (9)
Microseconds tds_gsum(const DsParams& p) { return 2.0 * p.tgsum; }    // (10)
Microseconds tds(const DsParams& p) {
  return tds_compute(p) + tds_exch(p) + tds_gsum(p);  // Eq. (7)
}

Microseconds trun(const PerfParams& p, long nt, double ni) {
  return static_cast<double>(nt) * tps(p.ps) +
         static_cast<double>(nt) * ni * tds(p.ds);  // Eq. (11)
}

Microseconds tcomm(const PerfParams& p, long nt, double ni) {
  // Eq. (12): 2*Nt*Ni*tgsum + 5*Nt*texchxyz + 2*Nt*Ni*texchxy.
  const double n = static_cast<double>(nt);
  return 2.0 * n * ni * p.ds.tgsum + 5.0 * n * p.ps.texchxyz +
         2.0 * n * ni * p.ds.texchxy;
}

Microseconds tcomp(const PerfParams& p, long nt, double ni) {
  // Eq. (13).
  const double n = static_cast<double>(nt);
  return n * tps_compute(p.ps) + n * ni * tds_compute(p.ds);
}

double pfpp_ps(const PhaseParams& p) {
  return p.nps * p.nxyz / tps_exch(p);  // Eq. (14)
}

double pfpp_ds(const DsParams& p) {
  return p.nds * p.nxy / (tds_gsum(p) + tds_exch(p));  // Eq. (15)
}

double sustained_mflops(const PerfParams& p, double ni) {
  const double flops = p.ps.nps * p.ps.nxyz + ni * p.ds.nds * p.ds.nxy;
  const Microseconds t = tps(p.ps) + ni * tds(p.ds);
  return t > 0 ? flops / t : 0.0;
}

PerfParams with_interconnect(PerfParams p, const InterconnectCosts& costs) {
  p.ps.texchxyz = costs.texchxyz;
  p.ds.texchxy = costs.texchxy;
  p.ds.tgsum = costs.tgsum;
  return p;
}

}  // namespace hyades::perf
