#include "comm/portable.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyades::comm {

namespace {
constexpr int kTagBase = 8000;  // clear of Comm's and the coupler's tags
constexpr int kTagUser = 0;     // + user tag
constexpr int kTagBcast = 4096;
constexpr int kTagGather = 4097;
constexpr int kTagReduce = 4098;
}  // namespace

Portable::Portable(cluster::RankContext& ctx, int rank_base, int nranks)
    : ctx_(ctx),
      rank_base_(rank_base),
      nranks_(nranks < 0 ? ctx.nranks() : nranks) {
  if (ctx_.rank() < rank_base_ || ctx_.rank() >= rank_base_ + nranks_) {
    throw std::invalid_argument("Portable: rank outside group");
  }
}

Microseconds Portable::msg_cost(std::size_t doubles) const {
  const auto bytes = static_cast<std::int64_t>(doubles * sizeof(double));
  // Small messages ride the small-message path; larger ones the bulk
  // transfer path -- whichever the stack would pick.
  const net::LogPParams small = ctx_.net().small_message(
      static_cast<int>(std::min<std::int64_t>(bytes, 88)));
  const Microseconds bulk = ctx_.net().transfer_time(bytes);
  return bytes <= 88 ? small.half_rtt() : bulk;
}

void Portable::send(int dst, int tag, std::vector<double> data) {
  if (dst < 0 || dst >= nranks_) {
    throw std::out_of_range("Portable::send: bad destination");
  }
  if (tag < 0 || tag >= 4096) {
    throw std::invalid_argument("Portable::send: tag must be in [0, 4096)");
  }
  const Microseconds stamp = ctx_.clock().now() + msg_cost(data.size());
  ctx_.send_raw(abs(dst), kTagBase + kTagUser + tag, std::move(data), stamp);
}

std::vector<double> Portable::recv(int src, int tag) {
  if (src < 0 || src >= nranks_) {
    throw std::out_of_range("Portable::recv: bad source");
  }
  cluster::Message m = ctx_.recv_raw(abs(src), kTagBase + kTagUser + tag);
  ctx_.clock().advance_to(m.stamp_us);
  return std::move(m.data);
}

void Portable::bcast(std::vector<double>& data, int root) {
  // The classic binomial broadcast on root-relative ranks: climb the
  // masks until our set bit is found (that is the parent edge), then
  // forward on every lower mask.
  const int me = (rank() - root + nranks_) % nranks_;
  auto to_abs = [&](int rel) { return abs((rel % nranks_ + root) % nranks_); };
  int mask = 1;
  while (mask < nranks_) {
    if (me & mask) {
      cluster::Message m =
          ctx_.recv_raw(to_abs(me - mask), kTagBase + kTagBcast);
      ctx_.clock().advance_to(m.stamp_us);
      data = std::move(m.data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < nranks_) {
      const Microseconds stamp = ctx_.clock().now() + msg_cost(data.size());
      ctx_.send_raw(to_abs(me + mask), kTagBase + kTagBcast, data, stamp);
    }
    mask >>= 1;
  }
}

std::vector<std::vector<double>> Portable::gather(
    const std::vector<double>& mine, int root) {
  std::vector<std::vector<double>> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(nranks_));
    out[static_cast<std::size_t>(root)] = mine;
    for (int r = 0; r < nranks_; ++r) {
      if (r == root) continue;
      cluster::Message m = ctx_.recv_raw(abs(r), kTagBase + kTagGather);
      ctx_.clock().advance_to(m.stamp_us);
      out[static_cast<std::size_t>(r)] = std::move(m.data);
    }
  } else {
    const Microseconds stamp = ctx_.clock().now() + msg_cost(mine.size());
    ctx_.send_raw(abs(root), kTagBase + kTagGather, mine, stamp);
    // The flat gather serializes at the root; model the sender's own
    // overhead only.
    ctx_.clock().advance(ctx_.net().small_message(8).os);
  }
  return out;
}

double Portable::allreduce_sum(double x) {
  // Reduce to rank 0 over a binomial tree, then broadcast back.
  const int me = rank();
  double v = x;
  for (int bit = 1; bit < nranks_; bit <<= 1) {
    if (me & bit) {
      const Microseconds stamp = ctx_.clock().now() + msg_cost(1);
      ctx_.send_raw(abs(me & ~bit), kTagBase + kTagReduce, {v}, stamp);
      break;
    }
    if (me + bit < nranks_) {
      cluster::Message m = ctx_.recv_raw(abs(me + bit), kTagBase + kTagReduce);
      ctx_.clock().advance_to(m.stamp_us);
      v += m.data[0];
    }
  }
  std::vector<double> result{v};
  bcast(result, 0);
  return result[0];
}

}  // namespace hyades::comm
