// The application-specific communication library -- the paper's central
// software contribution (Section 4): two primitives, `exchange` and
// `global sum`, tuned to the GCM's needs and the hardware's strengths.
//
//   exchange (Section 4.1)
//     Brings tile halo regions into a consistent state.  Four phases
//     (send-East, send-West, send-North, send-South); in each phase a
//     rank ships one edge strip to a neighbor and receives the matching
//     strip from the opposite neighbor.  Remote traffic uses VI-mode bulk
//     transfers; transfers from the ranks of one SMP are aggregated
//     through the SMP's single NIU by the communication master (the
//     mix-mode protocol), and an SMP's outbound/inbound transfers in a
//     phase are serialized because one transfer saturates the PCI bus.
//     Intra-SMP and self (periodic wrap onto the same rank) traffic moves
//     by shared-memory copy.
//
//   global sum (Section 4.2)
//     Minimizes latency at the expense of message count: an SMP-local
//     shared-memory combine, then a recursive-doubling butterfly over the
//     SMPs (N log2 N messages in log2 N rounds), then local distribution.
//     Every rank obtains a bitwise-identical result (pairwise exchange +
//     commutative combine), which the CG solver's convergence test
//     requires.
//
// A Comm may span a contiguous sub-range of ranks so that coupled runs
// can give each isomorph half the machine (Section 5.1).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/runtime.hpp"

namespace hyades::comm {

enum Direction : int { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
inline constexpr int kDirections = 4;
[[nodiscard]] constexpr int opposite(int d) { return d ^ 1; }

class Comm {
 public:
  // Communicator over ranks [rank_base, rank_base + nranks); nranks = -1
  // means the whole machine.  The range must be SMP-aligned.
  explicit Comm(cluster::RankContext& ctx, int rank_base = 0, int nranks = -1);

  [[nodiscard]] int group_rank() const { return ctx_.rank() - rank_base_; }
  [[nodiscard]] int group_size() const { return nranks_; }
  [[nodiscard]] int group_smps() const { return nranks_ / ctx_.procs_per_smp(); }
  [[nodiscard]] cluster::RankContext& ctx() { return ctx_; }

  // ---- global sum ----------------------------------------------------
  // Returns the sum of `x` across the group; bitwise identical everywhere.
  double global_sum(double x);
  // Element-wise sums of a small vector (one butterfly per the paper's
  // cost model: the payload still fits a single small message per round,
  // so it is costed as one global sum).
  void global_sum(std::vector<double>& xs);
  // Global max (same communication structure and cost as a sum).
  double global_max(double x);
  void barrier() { (void)global_sum(0.0); }

  // ---- halo exchange ---------------------------------------------------
  struct Buffers {
    // out[d]: data for the neighbor in direction d; in[d]: storage for
    // the strip arriving *from* direction d.  in[d] must be pre-sized to
    // the expected length; out/in may be empty when there is no neighbor.
    std::array<std::vector<double>, kDirections> out;
    std::array<std::vector<double>, kDirections> in;
  };
  // neighbors[d]: group rank of the neighbor in direction d, or -1.
  // Collective over the group (and over each SMP's ranks in lockstep).
  void exchange(const std::array<int, kDirections>& neighbors, Buffers& buf);

  // Number of exchange/global-sum calls completed (tag sequencing).
  [[nodiscard]] std::uint64_t exchanges_done() const { return xchg_seq_; }
  [[nodiscard]] std::uint64_t gsums_done() const { return gsum_seq_; }

 private:
  [[nodiscard]] int abs_rank(int group_rank) const {
    return rank_base_ + group_rank;
  }
  [[nodiscard]] bool remote(int group_rank) const;
  double butterfly(double x, int tag_salt);

  cluster::RankContext& ctx_;
  int rank_base_;
  int nranks_;
  std::uint64_t xchg_seq_ = 0;
  std::uint64_t gsum_seq_ = 0;

  // Shared-memory copy bandwidth for intra-SMP halo traffic.
  static constexpr double kShmCopyMBs = 400.0;
};

}  // namespace hyades::comm
