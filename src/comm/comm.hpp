// The application-specific communication library -- the paper's central
// software contribution (Section 4): two primitives, `exchange` and
// `global sum`, tuned to the GCM's needs and the hardware's strengths.
//
//   exchange (Section 4.1)
//     Brings tile halo regions into a consistent state.  Four phases
//     (send-East, send-West, send-North, send-South); in each phase a
//     rank ships one edge strip to a neighbor and receives the matching
//     strip from the opposite neighbor.  Remote traffic uses VI-mode bulk
//     transfers; transfers from the ranks of one SMP are aggregated
//     through the SMP's single NIU by the communication master (the
//     mix-mode protocol), and an SMP's outbound/inbound transfers in a
//     phase are serialized because one transfer saturates the PCI bus.
//     Intra-SMP and self (periodic wrap onto the same rank) traffic moves
//     by shared-memory copy.
//
//   global sum (Section 4.2)
//     Minimizes latency at the expense of message count: an SMP-local
//     shared-memory combine, then a recursive-doubling butterfly over the
//     SMPs (N log2 N messages in log2 N rounds), then local distribution.
//     Every rank obtains a bitwise-identical result (pairwise exchange +
//     commutative combine), which the CG solver's convergence test
//     requires.
//
//   split-phase operation
//     Both primitives also come in start/test/finish form so callers can
//     overlap communication with computation.  exchange_start posts the
//     four phases' sends up front (the CPU pays only the injection
//     overhead per bulk transfer; the bytes ride the SMP's NIU, whose
//     occupancy is tracked on a separate timeline); exchange_finish
//     drains the receives under the overlap rule
//         t_finish = max(t_local, t_arrival)
//     so communication time already covered by computation is credited to
//     the Accounting's overlap_us bucket instead of being charged twice.
//     global_sum_start performs the SMP-local combine and posts the first
//     butterfly round; global_sum_finish completes the remaining rounds,
//     hiding the first round's latency behind whatever computation ran in
//     between.  The blocking calls are implemented as start+finish of an
//     interleaved mode whose concatenation is exactly the classic
//     synchronous algorithm, so blocking timing is bit-identical to the
//     paper-calibrated library.
//
//     Collective discipline: all ranks of the group must start and finish
//     the same collectives in the same order (exchange finishes may be
//     reordered among in-flight exchanges -- each handle carries its own
//     tag sequence -- but global-sum finishes must follow start order).
//
// A Comm may span a contiguous sub-range of ranks so that coupled runs
// can give each isomorph half the machine (Section 5.1).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/runtime.hpp"
#include "comm/reliable.hpp"

namespace hyades::comm {

enum Direction : int { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
inline constexpr int kDirections = 4;
[[nodiscard]] constexpr int opposite(int d) { return d ^ 1; }

class Comm;

// Halo-strip staging area for one exchange.  out[d]: data for the
// neighbor in direction d; in[d]: storage for the strip arriving *from*
// direction d.  in[d] must be pre-sized to the expected length; out/in
// may be empty when there is no neighbor.
struct Buffers {
  std::array<std::vector<double>, kDirections> out;
  std::array<std::vector<double>, kDirections> in;
};

// Number of split-phase handles destroyed while still active (never
// finished).  An abandoned handle leaves messages queued on its
// (source, tag) streams, which a later handle on the same rotating tag
// slot would consume as its own data -- the destructors log an error and
// bump this counter, and Comm refuses to reuse the slot (fail fast
// instead of corrupting state).  Process-wide; reset in tests.
[[nodiscard]] std::uint64_t abandoned_handles();
void reset_abandoned_handles();

// In-flight halo exchange.  Obtained from Comm::exchange_start; must be
// completed with Comm::exchange_finish exactly once.  Movable, not
// copyable; the Buffers passed to start must outlive the handle.
// Destroying a still-active handle is a caller bug: the destructor logs
// an error and counts it in abandoned_handles().
class ExchangeHandle {
 public:
  ExchangeHandle() = default;
  ~ExchangeHandle();
  ExchangeHandle(const ExchangeHandle&) = delete;
  ExchangeHandle& operator=(const ExchangeHandle&) = delete;
  ExchangeHandle(ExchangeHandle&& o) noexcept;
  ExchangeHandle& operator=(ExchangeHandle&& o) noexcept;

  [[nodiscard]] bool valid() const { return buf_ != nullptr; }

 private:
  friend class Comm;
  enum class Mode { kInterleaved, kPipelined };

  struct Phase {
    int nb_out = -1, nb_in = -1;
    bool out_remote = false, in_remote = false;
    std::int64_t out_b = 0, in_b = 0;    // this rank's strip bytes
    std::int64_t smp_out = 0, smp_in = 0;  // SMP-aggregated bytes
  };

  Mode mode_ = Mode::kPipelined;
  std::array<int, kDirections> nb_{{-1, -1, -1, -1}};
  Buffers* buf_ = nullptr;
  std::uint64_t seq_ = 0;  // tag-sequencing id (kTagXchgBase offset)
  std::array<Phase, kDirections> phase_;
  std::array<std::optional<cluster::Message>, kDirections> arrived_;
  Microseconds t_begin = 0;      // clock at exchange_start entry
  Microseconds t_start_end = 0;  // clock at exchange_start exit
  Microseconds t_phase0 = 0;     // interleaved: phase-0 send-complete time
};

// In-flight global reduction (sum or max).  Like ExchangeHandle,
// abandoning an active handle is detected by the destructor.
class GsumHandle {
 public:
  GsumHandle() = default;
  ~GsumHandle();
  GsumHandle(const GsumHandle&) = delete;
  GsumHandle& operator=(const GsumHandle&) = delete;
  GsumHandle(GsumHandle&& o) noexcept;
  GsumHandle& operator=(GsumHandle&& o) noexcept;

  [[nodiscard]] bool valid() const { return active_; }

 private:
  friend class Comm;
  enum class Op { kSum, kMax };

  std::vector<double> v_;
  Op op_ = Op::kSum;
  int salt_ = 0;  // per-handle tag salt
  bool active_ = false;
  bool blocking_ = false;  // part of a blocking call (trace/record shape)
  Microseconds t_begin = 0;
  Microseconds t_start_end = 0;
};

class Comm {
 public:
  // Communicator over ranks [rank_base, rank_base + nranks); nranks = -1
  // means the whole machine.  The range must be SMP-aligned.
  explicit Comm(cluster::RankContext& ctx, int rank_base = 0, int nranks = -1);

  [[nodiscard]] int group_rank() const { return ctx_.rank() - rank_base_; }
  [[nodiscard]] int group_size() const { return nranks_; }
  [[nodiscard]] int group_smps() const { return nranks_ / ctx_.procs_per_smp(); }
  [[nodiscard]] cluster::RankContext& ctx() { return ctx_; }

  // ---- global sum ----------------------------------------------------
  // Returns the sum of `x` across the group; bitwise identical everywhere.
  double global_sum(double x);
  // Element-wise sums of a small vector (one butterfly per the paper's
  // cost model: the payload still fits a single small message per round,
  // so it is costed as one global sum).
  void global_sum(std::vector<double>& xs);
  // Global max (same communication structure and cost as a sum).
  double global_max(double x);
  // Pure synchronization: a payload-free pass over the same butterfly
  // network, with the same per-round costs as a global sum but its own
  // tag space and counter -- barriers neither consume global-sum tag
  // sequence numbers nor pollute gsums_done() statistics.
  void barrier();

  // ---- split-phase global sum -----------------------------------------
  // Start the SMP-local combine and the first butterfly round; finish
  // completes the reduction and returns the result vector (identical on
  // every rank).  Finishes must be called in start order on all ranks.
  GsumHandle global_sum_start(std::vector<double> xs);
  GsumHandle global_sum_start(double x);
  GsumHandle global_max_start(double x);
  std::vector<double> global_sum_finish(GsumHandle& h);

  // ---- halo exchange ---------------------------------------------------
  using Buffers = hyades::comm::Buffers;
  // neighbors[d]: group rank of the neighbor in direction d, or -1.
  // Collective over the group (and over each SMP's ranks in lockstep).
  void exchange(const std::array<int, kDirections>& neighbors, Buffers& buf);

  // ---- split-phase halo exchange ---------------------------------------
  // Post all four phases' sends and return without waiting for the
  // inbound strips.  buf.out is consumed immediately (safe to reuse);
  // buf.in is filled by exchange_finish.  In-flight exchanges may be
  // finished in any order (per-handle tag sequencing), but every handle
  // must be finished exactly once.
  ExchangeHandle exchange_start(const std::array<int, kDirections>& neighbors,
                                Buffers& buf);
  // Non-blocking progress probe: drains strips that have already arrived
  // into the handle and reports whether all inbound strips are present.
  // Never advances the virtual clock (timing stays deterministic).
  bool exchange_test(ExchangeHandle& h);
  // Complete the exchange: unpack inbound strips under the overlap rule
  // t_finish = max(t_local, t_arrival); hidden communication is credited
  // to Accounting::overlap_us.
  void exchange_finish(ExchangeHandle& h);

  // Number of exchange/global-sum/barrier calls completed (tag
  // sequencing and Figure-11 statistics).
  [[nodiscard]] std::uint64_t exchanges_done() const { return xchg_seq_; }
  [[nodiscard]] std::uint64_t gsums_done() const { return gsum_seq_; }
  [[nodiscard]] std::uint64_t barriers_done() const { return barrier_seq_; }

  // Reliability-protocol counters for this rank's transfers through this
  // communicator (all zero when no FaultPlan is attached).
  [[nodiscard]] const ReliableStats& fault_stats() const {
    return rel_.stats();
  }

 private:
  [[nodiscard]] int abs_rank(int group_rank) const {
    return rank_base_ + group_rank;
  }
  [[nodiscard]] bool remote(int group_rank) const;

  // Shared helpers of the blocking and split-phase paths.
  void validate_neighbors(const std::array<int, kDirections>& neighbors) const;
  ExchangeHandle::Phase plan_phase(int d,
                                   const std::array<int, kDirections>& nb,
                                   const Buffers& buf);
  void run_seed_phase(const ExchangeHandle::Phase& p, int d,
                      std::uint64_t seq, Buffers& buf);
  ExchangeHandle exchange_start_mode(
      const std::array<int, kDirections>& neighbors, Buffers& buf,
      ExchangeHandle::Mode mode);
  [[nodiscard]] int xchg_tag(std::uint64_t seq, int d) const;

  // Largest power of two <= n: the butterfly "core" over which the
  // recursive-doubling rounds run; SMPs beyond it fold in/out.
  static int butterfly_core(int n);
  GsumHandle reduce_start(std::vector<double> v, GsumHandle::Op op,
                          bool blocking);
  void reduce_finish(GsumHandle& h);
  static void combine_into(std::vector<double>& a,
                           const std::vector<double>& b, GsumHandle::Op op);

  // Rotating tag-window sizes: a started exchange / global sum draws the
  // next slot; the slot is released when the handle finishes.  Starting a
  // collective whose slot is still held by an unfinished (or abandoned)
  // handle throws -- a wrapped slot would silently interleave two
  // handles' messages on one (source, tag) stream.
  static constexpr int kXchgWindow = 64;
  static constexpr int kGsumWindow = 4;

  cluster::RankContext& ctx_;
  // All bulk transport goes through the end-to-end reliability layer;
  // with no FaultPlan it degenerates to the raw bus operations.
  Reliable rel_{ctx_};
  int rank_base_;
  int nranks_;
  std::uint64_t xchg_seq_ = 0;      // completed exchanges
  std::uint64_t xchg_started_ = 0;  // started exchanges (tag sequencing)
  std::uint64_t gsum_seq_ = 0;
  std::uint64_t gsum_started_ = 0;
  std::uint64_t barrier_seq_ = 0;
  std::array<bool, kXchgWindow> xchg_slot_busy_{};
  std::array<bool, kGsumWindow> gsum_slot_busy_{};
  // SMP NIU occupancy frontier for pipelined transfers: bulk bytes ride
  // the NIU while the CPU computes; successive transfers serialize on it
  // (one transfer saturates the PCI bus, Section 4.1).
  Microseconds niu_busy_until_ = 0;

  // Shared-memory copy bandwidth for intra-SMP halo traffic.
  static constexpr double kShmCopyMBs = 400.0;
};

}  // namespace hyades::comm
