#include "comm/reliable.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "cluster/membership.hpp"
#include "cluster/trace.hpp"

namespace hyades::comm {

namespace {
// A NAK is one small control message back to the sender.
constexpr int kNakPayloadBytes = 8;

// Real-time patience while polling for a silent peer.  The grace period
// filters transient thread-scheduling lag before the plan is consulted
// about a scheduled fail-stop; the hard deadline turns a protocol bug
// (waiting on a peer that is neither sending nor scheduled to die) into
// a descriptive error instead of a hang.
constexpr auto kDeadPeerGrace = std::chrono::milliseconds(50);
constexpr auto kRecvDeadline = std::chrono::seconds(30);
constexpr auto kRecvPollSleep = std::chrono::microseconds(50);
}  // namespace

void Reliable::send(int to, int tag, std::vector<double> data,
                    Microseconds stamp) {
  const cluster::FaultPlan* plan = ctx_.faults();
  if (cluster::Membership* ms = ctx_.membership()) ms->maybe_fail_self();
  const bool remote = ctx_.host_smp_of(to) != ctx_.host_smp();

  // Dead inter-SMP link: the transfer survives on a route-around path
  // through the fat tree's remaining diversity, paying extra latency.
  // Timing-only -- the payload is untouched, so runs differ from the
  // healthy schedule purely in stamps (state stays bit-identical).
  Microseconds reroute_us = 0;
  if (plan != nullptr && remote && plan->has_link_kills() &&
      plan->link_dead(ctx_.host_smp(), ctx_.host_smp_of(to),
                      ctx_.clock().now())) {
    reroute_us = plan->reroute_penalty_us;
  }

  if (plan == nullptr || !plan->has_fates() || !remote) {
    if (reroute_us == 0) {
      // Fault-free / intra-SMP fast path: exactly the raw transport, no
      // extra clock, accounting, or metadata effects.
      ctx_.send_raw(to, tag, std::move(data), stamp);
      return;
    }
    cluster::Message m;
    m.tag = tag;
    m.data = std::move(data);
    m.stamp_us = stamp + reroute_us;
    m.reroute_us = reroute_us;
    ctx_.send_msg(to, std::move(m));
    return;
  }

  const std::uint64_t serial = next_serial_[to]++;
  const net::Interconnect& net = ctx_.net();
  const auto bytes =
      static_cast<std::int64_t>(data.size() * sizeof(double));
  const Microseconds nak_us = net.small_message(kNakPayloadBytes).half_rtt();
  const Microseconds resend_us = net.transfer_time(bytes);

  // Walk the attempt sequence; every fate is a pure function of
  // (seed, src, dst, serial, attempt), so this run of decisions is
  // reproducible independent of thread scheduling.
  const Microseconds base = stamp + reroute_us;
  Microseconds t = base;  // arrival time of the current attempt
  int attempt = 0;
  for (;; ++attempt) {
    if (attempt >= plan->max_attempts) {
      throw DeliveryFailure(ctx_.rank(), to, serial, attempt);
    }
    const cluster::FaultPlan::Fate fate =
        plan->fate(ctx_.rank(), to, serial, attempt);
    if (fate == cluster::FaultPlan::Fate::kOk) break;

    if (fate == cluster::FaultPlan::Fate::kCorrupt) {
      // The attempt arrives, CRC-flagged.  Enqueue it for real -- with
      // a garbled (all-NaN) payload -- so the receive path must
      // actually discard it; FIFO per (src, tag) puts it ahead of the
      // eventual good attempt.  If a bug ever let the ghost through,
      // NaNs would propagate into the state and trip the solver guard.
      cluster::Message ghost;
      ghost.tag = tag;
      ghost.data.assign(data.size(),
                        std::numeric_limits<double>::quiet_NaN());
      ghost.stamp_us = t;
      ghost.serial = serial;
      ghost.attempt = attempt;
      ghost.crc_error = true;
      ghost.recovery_us = t - base;
      ghost.reroute_us = reroute_us;
      ctx_.send_msg(to, std::move(ghost));
      // Receiver NAKs on arrival; the sender backs off and retransfers.
      t += nak_us + plan->backoff(attempt + 1) + resend_us;
    } else {
      // Dropped: nothing arrives.  The receiver's virtual-clock
      // watchdog fires timeout_us after the expected arrival, NAKs,
      // and the sender backs off and retransfers.
      t += plan->timeout_us + nak_us + plan->backoff(attempt + 1) +
           resend_us;
    }
  }

  cluster::Message good;
  good.tag = tag;
  good.data = std::move(data);
  good.stamp_us = t;
  good.serial = serial;
  good.attempt = attempt;
  good.recovery_us = t - base;
  good.reroute_us = reroute_us;
  ctx_.send_msg(to, std::move(good));

  ++stats_.sent;
  stats_.retransmits += static_cast<std::uint64_t>(attempt);
  ctx_.accounting().retransmits += attempt;
}

std::optional<cluster::Message> Reliable::accept(cluster::Message m, int from,
                                                 int tag) {
  StreamState& st = streams_[{from, tag}];
  if (m.crc_error) {
    // A flagged attempt: software checked the 1-bit CRC status and
    // discards the payload, NAKing the sender.  Validate the protocol
    // bookkeeping first -- a broken stream must fail fast, not feed
    // garbage forward.
    if (st.last_attempt >= 0 && st.serial != m.serial) {
      throw std::logic_error(
          "reliable recv: rank " + std::to_string(ctx_.rank()) +
          " interleaved serials on stream from rank " + std::to_string(from) +
          " tag " + std::to_string(tag) + " (draining serial " +
          std::to_string(st.serial) + ", got ghost serial " +
          std::to_string(m.serial) + ")");
    }
    if (st.last_attempt >= 0 && m.attempt <= st.last_attempt) {
      throw std::logic_error(
          "reliable recv: rank " + std::to_string(ctx_.rank()) +
          " out-of-order attempt " + std::to_string(m.attempt) +
          " (serial " + std::to_string(m.serial) + " from rank " +
          std::to_string(from) + ")");
    }
    st.serial = m.serial;
    st.last_attempt = m.attempt;
    ++st.ghosts;
    ++stats_.crc_rejects;
    ++ctx_.accounting().crc_rejects;
    warn_recovery("CRC reject (NAK)", from, m.serial, m.attempt, m.stamp_us);
    return std::nullopt;
  }

  // A good attempt.  If ghosts of this transfer were drained, the good
  // attempt must belong to the same serial and come later.
  if (st.last_attempt >= 0) {
    if (st.serial != m.serial) {
      throw std::logic_error(
          "reliable recv: rank " + std::to_string(ctx_.rank()) +
          " good message serial " + std::to_string(m.serial) +
          " while draining serial " + std::to_string(st.serial) +
          " from rank " + std::to_string(from));
    }
    if (m.attempt <= st.last_attempt) {
      throw std::logic_error(
          "reliable recv: rank " + std::to_string(ctx_.rank()) +
          " good attempt " + std::to_string(m.attempt) +
          " not after last flagged attempt " +
          std::to_string(st.last_attempt) + " (serial " +
          std::to_string(m.serial) + " from rank " + std::to_string(from) +
          ")");
    }
  }
  if (m.reroute_us > 0) {
    // The transfer rode a route-around path past a dead link; attribute
    // the detour separately from fault recovery.
    ctx_.charge_reroute(m.reroute_us);
    ++stats_.degraded_sends;
    stats_.reroute_us += m.reroute_us;
  }
  if (m.attempt > 0) {
    // Attempts not seen as ghosts were dropped in flight and recovered
    // by the timeout watchdog.
    const auto drops =
        static_cast<std::int64_t>(m.attempt) - st.ghosts;
    if (drops > 0) {
      stats_.drops_detected += static_cast<std::uint64_t>(drops);
      ctx_.accounting().drops_detected += drops;
      warn_recovery("timeout recovery", from, m.serial, m.attempt,
                    m.stamp_us);
    }
    ctx_.charge_retrans(m.recovery_us);
    stats_.retrans_us += m.recovery_us;
    if (ctx_.tracer() != nullptr) {
      cluster::SpanCounters ctr;
      ctr.bytes = static_cast<std::int64_t>(m.data.size() * sizeof(double));
      // The recovery episode occupies [fault-free arrival, actual
      // arrival] in virtual time.
      ctx_.tracer()->record("retransmit", cluster::SpanCat::kFault,
                            m.clean_stamp(), m.stamp_us, ctr);
    }
  }
  st = StreamState{};  // transfer complete; reset continuity tracking
  return m;
}

cluster::Message Reliable::recv(int from, int tag) {
  cluster::Membership* ms = ctx_.membership();
  if (ms == nullptr) {
    for (;;) {
      std::optional<cluster::Message> good =
          accept(ctx_.recv_raw(from, tag), from, tag);
      if (good) return std::move(*good);
    }
  }

  // Node kills are scheduled: a blocking receive is a communication
  // point (this rank may be due to die here) and must not hang on a
  // peer that fail-stopped.  Poll the bus; on sustained silence ask the
  // membership service whether the plan explains it, and escalate to
  // the collective NodeDown verdict instead of waiting out the bus's
  // real-time watchdog.
  ms->maybe_fail_self();
  // lint:allow(wall-clock): hang-detection watchdog for a fail-stopped
  // peer; bounds host wait only, never feeds simulated timestamps.
  const auto started = std::chrono::steady_clock::now();
  auto empty_since = started;
  bool was_empty = false;
  for (;;) {
    std::optional<cluster::Message> m = ctx_.try_recv_raw(from, tag);
    if (m) {
      was_empty = false;
      ms->note_alive(from, m->stamp_us);
      std::optional<cluster::Message> good = accept(std::move(*m), from, tag);
      if (good) return std::move(*good);
      continue;
    }
    // lint:allow(wall-clock): same watchdog; real time bounds the poll
    // loop, virtual time is untouched.
    const auto now = std::chrono::steady_clock::now();
    if (!was_empty) {
      was_empty = true;
      empty_since = now;
    }
    if (now - empty_since >= kDeadPeerGrace) {
      if (const cluster::NodeKill* kill = ms->killed_peer(from)) {
        ms->escalate(from, *kill);  // throws NodeDownError
      }
    }
    if (now - started >= kRecvDeadline) {
      throw std::runtime_error(
          "reliable recv: rank " + std::to_string(ctx_.rank()) +
          " timed out waiting for rank " + std::to_string(from) + " tag " +
          std::to_string(tag) + " (peer silent but not scheduled to die)");
    }
    std::this_thread::sleep_for(kRecvPollSleep);
  }
}

std::optional<cluster::Message> Reliable::try_recv(int from, int tag) {
  cluster::Membership* ms = ctx_.membership();
  if (ms != nullptr) ms->maybe_fail_self();
  for (;;) {
    std::optional<cluster::Message> m = ctx_.try_recv_raw(from, tag);
    if (!m) return std::nullopt;
    if (ms != nullptr) ms->note_alive(from, m->stamp_us);
    std::optional<cluster::Message> good = accept(std::move(*m), from, tag);
    if (good) return good;
  }
}

void Reliable::warn_recovery(const char* what, int from, std::uint64_t serial,
                             int attempt, Microseconds t) {
  if (warn_limiter_.admit()) {
    ++stats_.warns_emitted;
    log_warn() << "fault: rank " << ctx_.rank() << " " << what
               << " from rank " << from << " serial " << serial
               << " attempt " << attempt << " at t=" << t << " us";
  } else {
    ++stats_.warns_suppressed;
  }
}

}  // namespace hyades::comm
