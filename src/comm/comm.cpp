#include "comm/comm.hpp"

#include "cluster/trace.hpp"
#include "support/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <utility>

namespace hyades::comm {

namespace {
constexpr int kTagBarrierBase = 700;   // + round
constexpr int kTagBarrierLocal = 960;  // slave -> master, master -> slave
constexpr int kTagGsumBase = 1000;     // + salt + round
constexpr int kTagGsumLocal = 1900;    // slave -> master, master -> slave
constexpr int kTagXchgBase = 2000;     // + (seq % window) * kDirections + dir

// In-flight tag disambiguation: each started exchange / global sum draws
// the next slot of a rotating window (Comm::kXchgWindow /
// Comm::kGsumWindow slots), so concurrent handles never share a
// (source, tag) stream and exchanges may finish out of order.
constexpr int kGsumSaltStride = 64;  // leaves room for any butterfly depth

std::atomic<std::uint64_t> g_abandoned_handles{0};
}  // namespace

std::uint64_t abandoned_handles() {
  return g_abandoned_handles.load(std::memory_order_relaxed);
}

void reset_abandoned_handles() {
  g_abandoned_handles.store(0, std::memory_order_relaxed);
}

// ---- handle lifetime -----------------------------------------------------
//
// A still-active handle reaching its destructor means the caller never
// called the matching finish: its messages stay queued on the rotating
// (source, tag) slot, where a later wrapped handle would consume them as
// its own data.  Destructors cannot throw, so they shout and count; the
// slot stays marked busy in the Comm, which makes the next wrap onto it
// fail fast in *_start instead of corrupting state.
//
// During exception unwinding (an epoch aborting on a NodeDown verdict
// tears down whole call stacks holding live handles) abandonment is the
// expected teardown path, not a caller bug: the counter still ticks, but
// the log line drops to a rate-limitable warning.

ExchangeHandle::~ExchangeHandle() {
  if (buf_ != nullptr) {
    g_abandoned_handles.fetch_add(1, std::memory_order_relaxed);
    if (std::uncaught_exceptions() > 0) {
      log_warn() << "ExchangeHandle abandoned during unwinding (seq " << seq_
                 << "): epoch abort tore down an in-flight exchange";
    } else {
      log_error() << "ExchangeHandle abandoned while active (seq " << seq_
                  << "): exchange_finish was never called; its tag slot is "
                     "poisoned and messages may be left undrained";
    }
  }
}

ExchangeHandle::ExchangeHandle(ExchangeHandle&& o) noexcept
    : mode_(o.mode_),
      nb_(o.nb_),
      buf_(std::exchange(o.buf_, nullptr)),
      seq_(o.seq_),
      phase_(o.phase_),
      arrived_(std::move(o.arrived_)),
      t_begin(o.t_begin),
      t_start_end(o.t_start_end),
      t_phase0(o.t_phase0) {}

ExchangeHandle& ExchangeHandle::operator=(ExchangeHandle&& o) noexcept {
  if (this != &o) {
    if (buf_ != nullptr) {
      g_abandoned_handles.fetch_add(1, std::memory_order_relaxed);
      log_error() << "ExchangeHandle abandoned by move-assignment (seq "
                  << seq_ << ")";
    }
    mode_ = o.mode_;
    nb_ = o.nb_;
    buf_ = std::exchange(o.buf_, nullptr);
    seq_ = o.seq_;
    phase_ = o.phase_;
    arrived_ = std::move(o.arrived_);
    t_begin = o.t_begin;
    t_start_end = o.t_start_end;
    t_phase0 = o.t_phase0;
  }
  return *this;
}

GsumHandle::~GsumHandle() {
  if (active_) {
    g_abandoned_handles.fetch_add(1, std::memory_order_relaxed);
    if (std::uncaught_exceptions() > 0) {
      log_warn() << "GsumHandle abandoned during unwinding (salt " << salt_
                 << "): epoch abort tore down an in-flight reduction";
    } else {
      log_error() << "GsumHandle abandoned while active (salt " << salt_
                  << "): global_sum_finish was never called; its tag slot is "
                     "poisoned and messages may be left undrained";
    }
  }
}

GsumHandle::GsumHandle(GsumHandle&& o) noexcept
    : v_(std::move(o.v_)),
      op_(o.op_),
      salt_(o.salt_),
      active_(std::exchange(o.active_, false)),
      blocking_(o.blocking_),
      t_begin(o.t_begin),
      t_start_end(o.t_start_end) {}

GsumHandle& GsumHandle::operator=(GsumHandle&& o) noexcept {
  if (this != &o) {
    if (active_) {
      g_abandoned_handles.fetch_add(1, std::memory_order_relaxed);
      log_error() << "GsumHandle abandoned by move-assignment (salt " << salt_
                  << ")";
    }
    v_ = std::move(o.v_);
    op_ = o.op_;
    salt_ = o.salt_;
    active_ = std::exchange(o.active_, false);
    blocking_ = o.blocking_;
    t_begin = o.t_begin;
    t_start_end = o.t_start_end;
  }
  return *this;
}

Comm::Comm(cluster::RankContext& ctx, int rank_base, int nranks)
    : ctx_(ctx),
      rank_base_(rank_base),
      nranks_(nranks < 0 ? ctx.nranks() : nranks) {
  const int ppp = ctx_.procs_per_smp();
  if (rank_base_ % ppp != 0 || nranks_ % ppp != 0) {
    throw std::invalid_argument("Comm: group must be SMP-aligned");
  }
  if (ctx_.rank() < rank_base_ || ctx_.rank() >= rank_base_ + nranks_) {
    throw std::invalid_argument("Comm: rank outside group");
  }
  if (group_smps() < 1) {
    throw std::invalid_argument("Comm: empty group");
  }
}

// Largest power of two <= n: the butterfly "core" size.  SMPs beyond it
// fold their contribution into a core partner before the butterfly and
// receive the result afterwards, which generalizes the reductions to
// any SMP count while leaving the power-of-two schedule untouched.
int Comm::butterfly_core(int n) {
  int m = 1;
  while (m * 2 <= n) m *= 2;
  return m;
}

bool Comm::remote(int group_rank) const {
  // Cost classification follows the *host* placement: after a live
  // migration, traffic to a tile adopted onto my own board is shared
  // memory, and a once-local partner hosted elsewhere rides the fabric.
  // Identity placement reduces to the structural smp_of() test.
  return ctx_.host_smp_of(abs_rank(group_rank)) != ctx_.host_smp();
}

// ---- global reductions ---------------------------------------------------
//
// Structure (Section 4.2): SMP-local combine through shared memory, a
// recursive-doubling butterfly over the group's SMP masters, then local
// distribution.  `start` runs the local combine and posts the first
// butterfly round; `finish` completes the rest.  Called back to back the
// two halves execute exactly the classic synchronous algorithm, which
// keeps blocking timing bit-identical to the paper calibration.

void Comm::combine_into(std::vector<double>& a, const std::vector<double>& b,
                        GsumHandle::Op op) {
  if (a.size() != b.size()) {
    throw std::logic_error("global reduce: size mismatch");
  }
  if (op == GsumHandle::Op::kSum) {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::max(a[i], b[i]);
  }
}

GsumHandle Comm::reduce_start(std::vector<double> v, GsumHandle::Op op,
                              bool blocking) {
  // Fail fast on tag-window wrap: if the rotating salt slot is still
  // held by an unfinished (or abandoned) reduction, a new handle on it
  // would read the old handle's butterfly messages as its own.
  const int slot = static_cast<int>(gsum_started_ % kGsumWindow);
  if (gsum_slot_busy_[static_cast<std::size_t>(slot)]) {
    throw std::runtime_error(
        "Comm: global-sum tag window wrapped onto an unfinished handle "
        "(more than " +
        std::to_string(kGsumWindow) +
        " reductions in flight, or an earlier handle was abandoned)");
  }
  gsum_slot_busy_[static_cast<std::size_t>(slot)] = true;

  GsumHandle h;
  h.v_ = std::move(v);
  h.op_ = op;
  h.active_ = true;
  h.blocking_ = blocking;
  h.salt_ = slot * kGsumSaltStride;
  ++gsum_started_;
  h.t_begin = ctx_.clock().now();

  const int ppp = ctx_.procs_per_smp();
  const int gsmp = (ctx_.rank() - rank_base_) / ppp;
  const int master_abs = rank_base_ + gsmp * ppp;

  // SMP-local combine through shared memory (modeled via the message bus
  // for transport; clocks synchronize through the SMP barrier).
  ctx_.smp_sync();
  if (ppp > 1) {
    if (!ctx_.is_master()) {
      rel_.send(master_abs, kTagGsumLocal, h.v_, ctx_.clock().now());
    } else {
      for (int lr = 1; lr < ppp; ++lr) {
        cluster::Message m = rel_.recv(master_abs + lr, kTagGsumLocal);
        combine_into(h.v_, m.data, h.op_);
      }
    }
  }

  // Post the first message of the reduction; with computation between
  // start and finish, it is in flight while we work and its latency is
  // hidden (the overlap rule in reduce_finish).  Power-of-two groups
  // post butterfly round 0 exactly as before; in a non-power-of-two
  // group the SMPs beyond the butterfly core post their *fold* send
  // instead, and core SMPs post nothing (they must absorb the folds
  // before their first butterfly send).
  if (ctx_.is_master() && group_smps() > 1) {
    const int gsmps = group_smps();
    const int core = butterfly_core(gsmps);
    int rounds = 0;
    for (int n = core; n > 1; n >>= 1) ++rounds;
    if (gsmp >= core) {
      const int partner_abs = rank_base_ + (gsmp - core) * ppp;
      rel_.send(partner_abs, kTagGsumBase + h.salt_ + rounds, h.v_,
                ctx_.clock().now());
    } else if (gsmps == core) {
      const int partner_gsmp = gsmp ^ 1;
      const int partner_abs = rank_base_ + partner_gsmp * ppp;
      rel_.send(partner_abs, kTagGsumBase + h.salt_, h.v_,
                ctx_.clock().now());
    }
  }
  h.t_start_end = ctx_.clock().now();
  if (!blocking) {
    ctx_.charge_comm(h.t_begin);
    if (ctx_.tracer()) {
      cluster::SpanCounters ctr;
      ctr.bytes = static_cast<std::int64_t>(h.v_.size() * sizeof(double));
      ctx_.tracer()->record("gsum_start", cluster::SpanCat::kGsum, h.t_begin,
                            h.t_start_end, ctr);
    }
  }
  return h;
}

void Comm::reduce_finish(GsumHandle& h) {
  if (!h.active_) {
    throw std::logic_error("global_sum_finish: handle not active");
  }
  const Microseconds t_entry = ctx_.clock().now();
  const int ppp = ctx_.procs_per_smp();
  const int gsmp = (ctx_.rank() - rank_base_) / ppp;
  const int gsmps = group_smps();
  const int master_abs = rank_base_ + gsmp * ppp;

  // Earliest time the data this rank waits on was available; used to
  // credit hidden communication under the overlap rule.
  Microseconds ready = h.t_start_end;

  if (ctx_.is_master()) {
    // Recursive-doubling butterfly across the group's SMPs (Section 4.2,
    // Figure 8): log2(core) rounds, partner differs in bit `round`.  A
    // non-power-of-two group first folds the SMPs beyond the largest
    // power-of-two core onto core partners, runs the unchanged butterfly
    // over the core, then ships the result back out to the folded SMPs
    // (two extra rounds instead of a restructured schedule, so the
    // power-of-two path stays bit-identical to the paper calibration).
    const int core = butterfly_core(gsmps);
    int rounds = 0;
    for (int n = core; n > 1; n >>= 1) ++rounds;
    if (gsmp >= core) {
      // Folded SMP: the fold send was posted by reduce_start; wait for
      // the fully reduced result from the core partner.
      cluster::Message m = rel_.recv(rank_base_ + (gsmp - core) * ppp,
                                     kTagGsumBase + h.salt_ + rounds + 1);
      h.v_ = std::move(m.data);
      ctx_.charge_imbalance(
          std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
      ctx_.clock().advance_to(m.stamp_us);
      ctx_.clock().advance(ctx_.net().gsum_round_time(rounds));
    } else {
      if (gsmp + core < gsmps) {
        // Absorb the folded partner's contribution (in flight since its
        // reduce_start) before the first butterfly send.
        cluster::Message m = rel_.recv(rank_base_ + (gsmp + core) * ppp,
                                       kTagGsumBase + h.salt_ + rounds);
        combine_into(h.v_, m.data, h.op_);
        ready = std::max(ready, m.stamp_us);
        ctx_.charge_imbalance(
            std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
        ctx_.clock().advance_to(m.stamp_us);
        ctx_.clock().advance(ctx_.net().gsum_round_time(rounds));
      }
      for (int round = 0; round < rounds; ++round) {
        const int partner_gsmp = gsmp ^ (1 << round);
        const int partner_abs = rank_base_ + partner_gsmp * ppp;
        if (round > 0 || gsmps != core) {
          // In a power-of-two group round 0 was posted by reduce_start;
          // otherwise fold absorption had to happen first, so every
          // round's send is issued here.
          rel_.send(partner_abs, kTagGsumBase + h.salt_ + round, h.v_,
                        ctx_.clock().now());
        }
        cluster::Message m =
            rel_.recv(partner_abs, kTagGsumBase + h.salt_ + round);
        combine_into(h.v_, m.data, h.op_);
        if (round == 0 && gsmps == core) ready = std::max(ready, m.stamp_us);
        // Round timing: both partners proceed from the later of their
        // clocks plus the modeled symmetric round cost.  The forward jump
        // onto a later partner stamp is wait caused by partner lateness.
        ctx_.charge_imbalance(
            std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
        ctx_.clock().advance_to(m.stamp_us);
        ctx_.clock().advance(ctx_.net().gsum_round_time(round));
      }
      if (gsmp + core < gsmps) {
        // Fold-back: return the finished result to the folded partner.
        rel_.send(rank_base_ + (gsmp + core) * ppp,
                  kTagGsumBase + h.salt_ + rounds + 1, h.v_,
                  ctx_.clock().now());
      }
    }
    // Local distribution.
    if (ppp > 1) {
      for (int lr = 1; lr < ppp; ++lr) {
        rel_.send(master_abs + lr, kTagGsumLocal, h.v_,
                      ctx_.clock().now());
      }
    }
  } else {
    cluster::Message m = rel_.recv(master_abs, kTagGsumLocal);
    h.v_ = std::move(m.data);
    ready = std::max(ready, m.stamp_us);
    ctx_.charge_imbalance(std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
    ctx_.clock().advance_to(m.stamp_us);
  }
  // Final sync pulls every local clock to the master's and applies the
  // shared-memory distribution cost.
  ctx_.smp_sync();

  ++gsum_seq_;
  gsum_slot_busy_[static_cast<std::size_t>(h.salt_ / kGsumSaltStride)] =
      false;
  cluster::SpanCounters ctr;
  ctr.bytes = static_cast<std::int64_t>(h.v_.size() * sizeof(double));
  const char* op_name = h.op_ == GsumHandle::Op::kSum ? "gsum" : "gmax";
  if (h.blocking_) {
    ctx_.charge_comm(h.t_begin);
    if (ctx_.tracer()) {
      ctx_.tracer()->record(op_name, cluster::SpanCat::kGsum, h.t_begin,
                            ctx_.clock().now(), ctr);
    }
  } else {
    // Communication already in flight while the caller computed is not
    // double-charged: credit it to the overlap bucket.
    const Microseconds hidden =
        std::max(0.0, std::min(t_entry, ready) - h.t_start_end);
    ctx_.charge_overlap(hidden);
    ctx_.charge_comm(t_entry);
    if (ctx_.tracer()) {
      ctr.overlap_us = hidden;
      ctx_.tracer()->record(std::string(op_name) + "_wait",
                            cluster::SpanCat::kGsum, t_entry,
                            ctx_.clock().now(), ctr);
    }
  }
  h.active_ = false;
}

double Comm::global_sum(double x) {
  std::vector<double> v{x};
  global_sum(v);
  return v[0];
}

void Comm::global_sum(std::vector<double>& xs) {
  GsumHandle h = reduce_start(std::move(xs), GsumHandle::Op::kSum,
                              /*blocking=*/true);
  reduce_finish(h);
  xs = std::move(h.v_);
}

double Comm::global_max(double x) {
  GsumHandle h = reduce_start(std::vector<double>{x}, GsumHandle::Op::kMax,
                              /*blocking=*/true);
  reduce_finish(h);
  return h.v_[0];
}

GsumHandle Comm::global_sum_start(std::vector<double> xs) {
  return reduce_start(std::move(xs), GsumHandle::Op::kSum, /*blocking=*/false);
}

GsumHandle Comm::global_sum_start(double x) {
  return global_sum_start(std::vector<double>{x});
}

GsumHandle Comm::global_max_start(double x) {
  return reduce_start(std::vector<double>{x}, GsumHandle::Op::kMax,
                      /*blocking=*/false);
}

std::vector<double> Comm::global_sum_finish(GsumHandle& h) {
  reduce_finish(h);
  return std::move(h.v_);
}

void Comm::barrier() {
  // A payload-free pass over the global-sum network: same SMP-local
  // combine / butterfly / distribution structure and the same per-round
  // costs, but its own tag space and counter, so barriers do not consume
  // global-sum sequence slots or distort gsums_done() statistics.
  const Microseconds t0 = ctx_.clock().now();
  const int ppp = ctx_.procs_per_smp();
  const int gsmp = (ctx_.rank() - rank_base_) / ppp;
  const int gsmps = group_smps();
  const int master_abs = rank_base_ + gsmp * ppp;
  const std::vector<double> empty;

  ctx_.smp_sync();
  if (ppp > 1) {
    if (!ctx_.is_master()) {
      rel_.send(master_abs, kTagBarrierLocal, empty, ctx_.clock().now());
    } else {
      for (int lr = 1; lr < ppp; ++lr) {
        (void)rel_.recv(master_abs + lr, kTagBarrierLocal);
      }
    }
  }
  if (ctx_.is_master()) {
    // Same fold / butterfly / fold-back schedule as reduce_finish, with
    // empty payloads and the barrier tag space.
    const int core = butterfly_core(gsmps);
    int rounds = 0;
    for (int n = core; n > 1; n >>= 1) ++rounds;
    if (gsmp >= core) {
      const int partner_abs = rank_base_ + (gsmp - core) * ppp;
      rel_.send(partner_abs, kTagBarrierBase + rounds, empty,
                ctx_.clock().now());
      cluster::Message m =
          rel_.recv(partner_abs, kTagBarrierBase + rounds + 1);
      ctx_.charge_imbalance(
          std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
      ctx_.clock().advance_to(m.stamp_us);
      ctx_.clock().advance(ctx_.net().gsum_round_time(rounds));
    } else {
      if (gsmp + core < gsmps) {
        cluster::Message m = rel_.recv(rank_base_ + (gsmp + core) * ppp,
                                       kTagBarrierBase + rounds);
        ctx_.charge_imbalance(
            std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
        ctx_.clock().advance_to(m.stamp_us);
        ctx_.clock().advance(ctx_.net().gsum_round_time(rounds));
      }
      for (int round = 0; round < rounds; ++round) {
        const int partner_gsmp = gsmp ^ (1 << round);
        const int partner_abs = rank_base_ + partner_gsmp * ppp;
        rel_.send(partner_abs, kTagBarrierBase + round, empty,
                      ctx_.clock().now());
        cluster::Message m =
            rel_.recv(partner_abs, kTagBarrierBase + round);
        ctx_.charge_imbalance(std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
        ctx_.clock().advance_to(m.stamp_us);
        ctx_.clock().advance(ctx_.net().gsum_round_time(round));
      }
      if (gsmp + core < gsmps) {
        rel_.send(rank_base_ + (gsmp + core) * ppp,
                  kTagBarrierBase + rounds + 1, empty, ctx_.clock().now());
      }
    }
    if (ppp > 1) {
      for (int lr = 1; lr < ppp; ++lr) {
        rel_.send(master_abs + lr, kTagBarrierLocal, empty,
                      ctx_.clock().now());
      }
    }
  } else {
    cluster::Message m = rel_.recv(master_abs, kTagBarrierLocal);
    ctx_.charge_imbalance(std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
    ctx_.clock().advance_to(m.stamp_us);
  }
  ctx_.smp_sync();

  ++barrier_seq_;
  ctx_.charge_comm(t0);
  if (ctx_.tracer()) {
    ctx_.tracer()->record("barrier", cluster::SpanCat::kBarrier, t0,
                          ctx_.clock().now());
  }
}

// ---- halo exchange -------------------------------------------------------

int Comm::xchg_tag(std::uint64_t seq, int d) const {
  return kTagXchgBase +
         static_cast<int>(seq % kXchgWindow) * kDirections + d;
}

void Comm::validate_neighbors(
    const std::array<int, kDirections>& neighbors) const {
  for (int d = 0; d < kDirections; ++d) {
    const int nb = neighbors[static_cast<std::size_t>(d)];
    if (nb >= nranks_) {
      throw std::out_of_range("Comm::exchange: neighbor outside group");
    }
    // Exactly -1 means "no neighbor"; any other negative is almost
    // certainly a caller index bug and must not be silently ignored.
    if (nb < -1) {
      throw std::out_of_range(
          "Comm::exchange: negative neighbor (use -1 for none)");
    }
  }
}

// Phase bookkeeping: who sends/receives what in direction d, and the
// SMP-aggregated byte counts (the communication master batches all local
// tiles' strips into one VI transfer per phase -- mix-mode, Section 4.1).
// The aggregation synchronizes the SMP's ranks, so this has clock effects
// and must run at the same point for every rank of an SMP.
ExchangeHandle::Phase Comm::plan_phase(
    int d, const std::array<int, kDirections>& nb, const Buffers& buf) {
  const int opp = opposite(d);
  ExchangeHandle::Phase p;
  p.nb_out = nb[static_cast<std::size_t>(d)];
  p.nb_in = nb[static_cast<std::size_t>(opp)];
  p.out_remote = p.nb_out >= 0 && remote(p.nb_out);
  p.in_remote = p.nb_in >= 0 && remote(p.nb_in);
  const auto bytes_of = [](const std::vector<double>& v) {
    return static_cast<std::int64_t>(v.size() * sizeof(double));
  };
  p.out_b = bytes_of(buf.out[static_cast<std::size_t>(d)]);
  p.in_b = bytes_of(buf.in[static_cast<std::size_t>(opp)]);
  p.smp_out = p.out_remote ? p.out_b : 0;
  p.smp_in = p.in_remote ? p.in_b : 0;
  const int ppp = ctx_.procs_per_smp();
  if (ppp > 1) {
    ctx_.smp_publish_bytes(p.out_remote ? p.out_b : 0,
                           p.in_remote ? p.in_b : 0);
    ctx_.smp_sync();
    p.smp_out = p.smp_in = 0;
    for (int lr = 0; lr < ppp; ++lr) {
      const auto [a, b] = ctx_.smp_peek_bytes(lr);
      p.smp_out += a;
      p.smp_in += b;
    }
    ctx_.smp_sync();
  }
  return p;
}

// One full phase of the classic synchronous algorithm: outbound (the
// SMP's batched transfer, or a shared-memory copy), then the inbound
// strip, whose transfer serializes behind the send (one transfer
// saturates the PCI bus, Section 4.1).
void Comm::run_seed_phase(const ExchangeHandle::Phase& p, int d,
                          std::uint64_t seq, Buffers& buf) {
  const net::Interconnect& net = ctx_.net();
  const Microseconds t0 = ctx_.clock().now();
  Microseconds t = t0;
  if (p.smp_out > 0) t += net.exchange_transfer_time(p.smp_out);
  if (p.nb_out >= 0 && !p.out_remote) {
    t += static_cast<double>(p.out_b) / kShmCopyMBs;
  }
  if (p.nb_out >= 0) {
    rel_.send(abs_rank(p.nb_out), xchg_tag(seq, d),
                  buf.out[static_cast<std::size_t>(d)], t);
  }
  if (p.nb_in >= 0) {
    cluster::Message m = rel_.recv(abs_rank(p.nb_in), xchg_tag(seq, d));
    auto& dst = buf.in[static_cast<std::size_t>(opposite(d))];
    if (m.data.size() != dst.size()) {
      throw std::logic_error("Comm::exchange: halo strip size mismatch");
    }
    dst = std::move(m.data);
    ctx_.charge_imbalance(std::max(0.0, m.clean_stamp() - t));
    t = std::max(t, m.stamp_us);
    if (p.in_remote) {
      t += net.exchange_transfer_time(p.smp_in);
    } else {
      t += static_cast<double>(p.in_b) / kShmCopyMBs;
    }
  }
  ctx_.clock().advance_to(t);
}

ExchangeHandle Comm::exchange_start_mode(
    const std::array<int, kDirections>& neighbors, Buffers& buf,
    ExchangeHandle::Mode mode) {
  validate_neighbors(neighbors);
  // Fail fast on tag-window wrap (before any send or clock effect): a
  // wrapped slot still held by an unfinished or abandoned handle means
  // its (source, tag) streams may hold undrained strips that this new
  // handle would consume as its own halo data.
  const auto slot = static_cast<std::size_t>(xchg_started_ % kXchgWindow);
  if (xchg_slot_busy_[slot]) {
    throw std::runtime_error(
        "Comm: exchange tag window wrapped onto an unfinished handle "
        "(more than " +
        std::to_string(kXchgWindow) +
        " exchanges in flight, or an earlier handle was abandoned)");
  }
  xchg_slot_busy_[slot] = true;

  ExchangeHandle h;
  h.mode_ = mode;
  h.nb_ = neighbors;
  h.buf_ = &buf;
  h.seq_ = xchg_started_++;
  h.t_begin = ctx_.clock().now();

  if (mode == ExchangeHandle::Mode::kInterleaved) {
    // Blocking path: only phase 0's outbound side runs here; finish
    // resumes with phase 0's inbound and then phases 1-3, so that
    // start+finish back to back is exactly the synchronous algorithm.
    const ExchangeHandle::Phase p = h.phase_[0] =
        plan_phase(0, neighbors, buf);
    const net::Interconnect& net = ctx_.net();
    Microseconds t = ctx_.clock().now();
    if (p.smp_out > 0) t += net.exchange_transfer_time(p.smp_out);
    if (p.nb_out >= 0 && !p.out_remote) {
      t += static_cast<double>(p.out_b) / kShmCopyMBs;
    }
    if (p.nb_out >= 0) {
      rel_.send(abs_rank(p.nb_out), xchg_tag(h.seq_, 0),
                    buf.out[0], t);
    }
    h.t_phase0 = t;
    h.t_start_end = ctx_.clock().now();
    return h;
  }

  // Pipelined (overlap) path: post every phase's send now.  The CPU pays
  // the injection overhead per bulk transfer and the shared-memory copy
  // cost for intra-SMP strips; the bulk bytes occupy the SMP's NIU
  // timeline, which successive transfers serialize on.
  const net::Interconnect& net = ctx_.net();
  std::int64_t out_bytes = 0;
  for (int d = 0; d < kDirections; ++d) {
    const ExchangeHandle::Phase p = h.phase_[static_cast<std::size_t>(d)] =
        plan_phase(d, neighbors, buf);
    Microseconds stamp = ctx_.clock().now();
    if (p.smp_out > 0) {
      ctx_.clock().advance(net.transfer_overhead());
      niu_busy_until_ = std::max(niu_busy_until_, ctx_.clock().now());
      niu_busy_until_ += net.exchange_transfer_time(p.smp_out);
      if (p.out_remote) stamp = niu_busy_until_;
    }
    if (p.nb_out >= 0) {
      if (!p.out_remote) {
        ctx_.clock().advance(static_cast<double>(p.out_b) / kShmCopyMBs);
        stamp = ctx_.clock().now();
      }
      rel_.send(abs_rank(p.nb_out), xchg_tag(h.seq_, d),
                    buf.out[static_cast<std::size_t>(d)], stamp);
      out_bytes += p.out_b;
    }
  }
  h.t_start_end = ctx_.clock().now();
  ctx_.charge_comm(h.t_begin);
  if (ctx_.tracer()) {
    cluster::SpanCounters ctr;
    ctr.bytes = out_bytes;
    ctx_.tracer()->record("exchange_start", cluster::SpanCat::kExchange,
                          h.t_begin, h.t_start_end, ctr);
  }
  return h;
}

ExchangeHandle Comm::exchange_start(
    const std::array<int, kDirections>& neighbors, Buffers& buf) {
  return exchange_start_mode(neighbors, buf, ExchangeHandle::Mode::kPipelined);
}

bool Comm::exchange_test(ExchangeHandle& h) {
  if (!h.valid()) {
    throw std::logic_error("exchange_test: handle already finished");
  }
  if (h.mode_ != ExchangeHandle::Mode::kPipelined) {
    throw std::logic_error("exchange_test: only split-phase handles");
  }
  bool all = true;
  for (int d = 0; d < kDirections; ++d) {
    const ExchangeHandle::Phase& p = h.phase_[static_cast<std::size_t>(d)];
    if (p.nb_in < 0 || h.arrived_[static_cast<std::size_t>(d)]) continue;
    std::optional<cluster::Message> m =
        rel_.try_recv(abs_rank(p.nb_in), xchg_tag(h.seq_, d));
    if (m) {
      h.arrived_[static_cast<std::size_t>(d)] = std::move(*m);
    } else {
      all = false;
    }
  }
  return all;
}

void Comm::exchange_finish(ExchangeHandle& h) {
  if (!h.valid()) {
    throw std::logic_error("exchange_finish: handle already finished");
  }
  Buffers& buf = *h.buf_;

  if (h.mode_ == ExchangeHandle::Mode::kInterleaved) {
    std::int64_t bytes = 0;
    // Resume the synchronous algorithm at phase 0's inbound side.
    {
      const ExchangeHandle::Phase& p = h.phase_[0];
      const net::Interconnect& net = ctx_.net();
      Microseconds t = h.t_phase0;
      if (p.nb_out >= 0) bytes += p.out_b;
      if (p.nb_in >= 0) {
        cluster::Message m =
            rel_.recv(abs_rank(p.nb_in), xchg_tag(h.seq_, 0));
        auto& dst = buf.in[static_cast<std::size_t>(opposite(0))];
        if (m.data.size() != dst.size()) {
          throw std::logic_error("Comm::exchange: halo strip size mismatch");
        }
        dst = std::move(m.data);
        ctx_.charge_imbalance(std::max(0.0, m.clean_stamp() - t));
        t = std::max(t, m.stamp_us);
        if (p.in_remote) {
          t += net.exchange_transfer_time(p.smp_in);
        } else {
          t += static_cast<double>(p.in_b) / kShmCopyMBs;
        }
        bytes += p.in_b;
      }
      ctx_.clock().advance_to(t);
    }
    for (int d = 1; d < kDirections; ++d) {
      const ExchangeHandle::Phase p = plan_phase(d, h.nb_, buf);
      run_seed_phase(p, d, h.seq_, buf);
      if (p.nb_out >= 0) bytes += p.out_b;
      if (p.nb_in >= 0) bytes += p.in_b;
    }
    ++xchg_seq_;
    xchg_slot_busy_[static_cast<std::size_t>(h.seq_ % kXchgWindow)] = false;
    ctx_.charge_comm(h.t_begin);
    if (ctx_.tracer()) {
      cluster::SpanCounters ctr;
      ctr.bytes = bytes;
      ctx_.tracer()->record("exchange", cluster::SpanCat::kExchange,
                            h.t_begin, ctx_.clock().now(), ctr);
    }
    h.buf_ = nullptr;
    return;
  }

  // Pipelined path: drain the inbound strips under the overlap rule
  // t_finish = max(t_local, t_arrival).  Inbound bulk transfers serialize
  // on the NIU timeline (and may have completed during the caller's
  // computation); intra-SMP strips cost a CPU copy on unpack.
  const net::Interconnect& net = ctx_.net();
  const Microseconds t_entry = ctx_.clock().now();
  Microseconds ready = h.t_start_end;
  std::int64_t in_bytes = 0;
  for (int d = 0; d < kDirections; ++d) {
    const ExchangeHandle::Phase& p = h.phase_[static_cast<std::size_t>(d)];
    if (p.nb_in < 0) continue;
    cluster::Message m =
        h.arrived_[static_cast<std::size_t>(d)]
            ? std::move(*h.arrived_[static_cast<std::size_t>(d)])
            : rel_.recv(abs_rank(p.nb_in), xchg_tag(h.seq_, d));
    auto& dst = buf.in[static_cast<std::size_t>(opposite(d))];
    if (m.data.size() != dst.size()) {
      throw std::logic_error("Comm::exchange: halo strip size mismatch");
    }
    dst = std::move(m.data);
    in_bytes += p.in_b;
    ctx_.charge_imbalance(std::max(0.0, m.clean_stamp() - ctx_.clock().now()));
    if (p.in_remote) {
      niu_busy_until_ = std::max(niu_busy_until_, m.stamp_us);
      niu_busy_until_ += net.exchange_transfer_time(p.smp_in);
      ready = std::max(ready, niu_busy_until_);
      ctx_.clock().advance_to(niu_busy_until_);
    } else {
      ready = std::max(ready, m.stamp_us);
      ctx_.clock().advance_to(m.stamp_us);
      ctx_.clock().advance(static_cast<double>(p.in_b) / kShmCopyMBs);
    }
  }
  // Communication that was in flight while the caller computed is not
  // double-charged; credit it to the overlap bucket.
  const Microseconds hidden =
      std::max(0.0, std::min(t_entry, ready) - h.t_start_end);
  ctx_.charge_overlap(hidden);
  ++xchg_seq_;
  xchg_slot_busy_[static_cast<std::size_t>(h.seq_ % kXchgWindow)] = false;
  ctx_.charge_comm(t_entry);
  if (ctx_.tracer()) {
    cluster::SpanCounters ctr;
    ctr.bytes = in_bytes;
    ctr.overlap_us = hidden;
    ctx_.tracer()->record("exchange_wait", cluster::SpanCat::kExchange,
                          t_entry, ctx_.clock().now(), ctr);
  }
  h.buf_ = nullptr;
}

void Comm::exchange(const std::array<int, kDirections>& neighbors,
                    Buffers& buf) {
  ExchangeHandle h =
      exchange_start_mode(neighbors, buf, ExchangeHandle::Mode::kInterleaved);
  exchange_finish(h);
}

}  // namespace hyades::comm
