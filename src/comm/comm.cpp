#include "comm/comm.hpp"

#include "cluster/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hyades::comm {

namespace {
constexpr int kTagGsumBase = 1000;   // + round
constexpr int kTagGsumLocal = 1900;  // slave -> master, master -> slave
constexpr int kTagXchgBase = 2000;   // + direction
}  // namespace

Comm::Comm(cluster::RankContext& ctx, int rank_base, int nranks)
    : ctx_(ctx),
      rank_base_(rank_base),
      nranks_(nranks < 0 ? ctx.nranks() : nranks) {
  const int ppp = ctx_.procs_per_smp();
  if (rank_base_ % ppp != 0 || nranks_ % ppp != 0) {
    throw std::invalid_argument("Comm: group must be SMP-aligned");
  }
  if (ctx_.rank() < rank_base_ || ctx_.rank() >= rank_base_ + nranks_) {
    throw std::invalid_argument("Comm: rank outside group");
  }
  const int smps = group_smps();
  if (smps < 1 || (smps & (smps - 1)) != 0) {
    throw std::invalid_argument("Comm: group SMP count must be a power of 2");
  }
}

bool Comm::remote(int group_rank) const {
  return ctx_.smp_of(abs_rank(group_rank)) != ctx_.smp();
}

// Generic reduction: SMP-local combine, masters butterfly, local
// distribution.  `combine` must be commutative so every rank obtains a
// bitwise-identical result.
namespace {
template <typename Fn>
void reduce_all(cluster::RankContext& ctx, int rank_base, int nranks,
                std::vector<double>& v, int tag_salt, Fn combine) {
  const int ppp = ctx.procs_per_smp();
  const int gsmp = (ctx.rank() - rank_base) / ppp;
  const int gsmps = nranks / ppp;
  const int master_abs = rank_base + gsmp * ppp;

  // SMP-local combine through shared memory (modeled via the message bus
  // for transport; clocks synchronize through the SMP barrier).
  ctx.smp_sync();
  if (ppp > 1) {
    if (!ctx.is_master()) {
      ctx.send_raw(master_abs, kTagGsumLocal, v, ctx.clock().now());
    } else {
      for (int lr = 1; lr < ppp; ++lr) {
        cluster::Message m = ctx.recv_raw(master_abs + lr, kTagGsumLocal);
        if (m.data.size() != v.size()) {
          throw std::logic_error("global reduce: local size mismatch");
        }
        for (std::size_t i = 0; i < v.size(); ++i) combine(v[i], m.data[i]);
      }
    }
  }

  // Recursive-doubling butterfly across the group's SMPs (Section 4.2,
  // Figure 8): log2(N) rounds, partner differs in bit `round`.
  if (ctx.is_master()) {
    int rounds = 0;
    for (int n = gsmps; n > 1; n >>= 1) ++rounds;
    for (int round = 0; round < rounds; ++round) {
      const int partner_gsmp = gsmp ^ (1 << round);
      const int partner_abs = rank_base + partner_gsmp * ppp;
      ctx.send_raw(partner_abs, kTagGsumBase + tag_salt + round, v,
                   ctx.clock().now());
      cluster::Message m =
          ctx.recv_raw(partner_abs, kTagGsumBase + tag_salt + round);
      if (m.data.size() != v.size()) {
        throw std::logic_error("global reduce: butterfly size mismatch");
      }
      for (std::size_t i = 0; i < v.size(); ++i) combine(v[i], m.data[i]);
      // Round timing: both partners proceed from the later of their
      // clocks plus the modeled symmetric round cost.
      ctx.clock().advance_to(m.stamp_us);
      ctx.clock().advance(ctx.net().gsum_round_time(round));
    }
    // Local distribution.
    if (ppp > 1) {
      for (int lr = 1; lr < ppp; ++lr) {
        ctx.send_raw(master_abs + lr, kTagGsumLocal, v, ctx.clock().now());
      }
    }
  } else {
    cluster::Message m = ctx.recv_raw(master_abs, kTagGsumLocal);
    v = std::move(m.data);
    ctx.clock().advance_to(m.stamp_us);
  }
  // Final sync pulls every local clock to the master's and applies the
  // shared-memory distribution cost.
  ctx.smp_sync();
}
}  // namespace

double Comm::global_sum(double x) {
  std::vector<double> v{x};
  global_sum(v);
  return v[0];
}

void Comm::global_sum(std::vector<double>& xs) {
  const Microseconds t0 = ctx_.clock().now();
  reduce_all(ctx_, rank_base_, nranks_, xs, 0,
             [](double& a, double b) { a += b; });
  ++gsum_seq_;
  ctx_.charge_comm(t0);
  if (ctx_.tracer()) ctx_.tracer()->record("gsum", t0, ctx_.clock().now());
}

double Comm::global_max(double x) {
  const Microseconds t0 = ctx_.clock().now();
  std::vector<double> v{x};
  reduce_all(ctx_, rank_base_, nranks_, v, 16,
             [](double& a, double b) { a = std::max(a, b); });
  ++gsum_seq_;
  ctx_.charge_comm(t0);
  if (ctx_.tracer()) ctx_.tracer()->record("gmax", t0, ctx_.clock().now());
  return v[0];
}

void Comm::exchange(const std::array<int, kDirections>& neighbors,
                    Buffers& buf) {
  const Microseconds t_begin = ctx_.clock().now();
  const net::Interconnect& net = ctx_.net();
  const int ppp = ctx_.procs_per_smp();

  for (int d = 0; d < kDirections; ++d) {
    const int nb_out = neighbors[static_cast<std::size_t>(d)];
    const int opp = opposite(d);
    const int nb_in = neighbors[static_cast<std::size_t>(opp)];
    if (nb_out >= nranks_ || nb_in >= nranks_) {
      throw std::out_of_range("Comm::exchange: neighbor outside group");
    }

    const bool out_remote = nb_out >= 0 && remote(nb_out);
    const bool in_remote = nb_in >= 0 && remote(nb_in);
    const auto bytes_of = [](const std::vector<double>& v) {
      return static_cast<std::int64_t>(v.size() * sizeof(double));
    };
    const std::int64_t out_b = bytes_of(buf.out[static_cast<std::size_t>(d)]);
    const std::int64_t in_b = bytes_of(buf.in[static_cast<std::size_t>(opp)]);

    // Aggregate this phase's remote traffic across the SMP: the
    // communication master batches all local tiles' strips into one VI
    // transfer per phase (mix-mode, Section 4.1).
    std::int64_t smp_out = out_remote ? out_b : 0;
    std::int64_t smp_in = in_remote ? in_b : 0;
    if (ppp > 1) {
      ctx_.smp_publish_bytes(out_remote ? out_b : 0, in_remote ? in_b : 0);
      ctx_.smp_sync();
      smp_out = smp_in = 0;
      for (int lr = 0; lr < ppp; ++lr) {
        const auto [a, b] = ctx_.smp_peek_bytes(lr);
        smp_out += a;
        smp_in += b;
      }
      ctx_.smp_sync();
    }

    // Outbound: the SMP's batched transfer for this phase; intra-SMP
    // strips move by shared-memory copy instead.
    const Microseconds t0 = ctx_.clock().now();
    Microseconds t = t0;
    if (smp_out > 0) t += net.exchange_transfer_time(smp_out);
    if (nb_out >= 0 && !out_remote) {
      t += static_cast<double>(out_b) / kShmCopyMBs;
    }
    if (nb_out >= 0) {
      ctx_.send_raw(abs_rank(nb_out), kTagXchgBase + d,
                    buf.out[static_cast<std::size_t>(d)], t);
    }

    // Inbound: wait for the opposite neighbor's phase-d strip; the
    // receive side's share of the transfer serializes behind the send
    // (one transfer saturates the PCI bus, Section 4.1).
    if (nb_in >= 0) {
      cluster::Message m = ctx_.recv_raw(abs_rank(nb_in), kTagXchgBase + d);
      auto& dst = buf.in[static_cast<std::size_t>(opp)];
      if (m.data.size() != dst.size()) {
        throw std::logic_error("Comm::exchange: halo strip size mismatch");
      }
      dst = std::move(m.data);
      t = std::max(t, m.stamp_us);
      if (in_remote) {
        t += net.exchange_transfer_time(smp_in);
      } else {
        t += static_cast<double>(in_b) / kShmCopyMBs;
      }
    }
    ctx_.clock().advance_to(t);
  }
  ++xchg_seq_;
  ctx_.charge_comm(t_begin);
  if (ctx_.tracer()) {
    ctx_.tracer()->record("exchange", t_begin, ctx_.clock().now());
  }
}

}  // namespace hyades::comm
