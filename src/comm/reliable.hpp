// End-to-end reliable delivery for the comm library's bulk transfers.
//
// The paper's fabric detects corruption (per-stage CRC surfaces a 1-bit
// status to software) but leaves recovery to the software layer.  This
// class is that layer: every remote message carries a per-(src, dst)
// sequence number, and the receive path checks the CRC status bit and
// discards flagged attempts -- modeling a NAK back to the sender -- so
// corrupted data can never reach halo buffers or global sums.  Dropped
// transfers are recovered by a receiver-side virtual-clock timeout.
// Retransmits apply a capped exponential backoff.
//
// Simulation mechanics: when a FaultPlan is attached to the machine, the
// *sender* precomputes the whole recovery episode (the fate of each
// attempt is a pure hash of (seed, src, dst, serial, attempt), so sender
// and tests agree without any handshake):
//
//   * a corrupted attempt is enqueued as a real message with garbled
//     payload (NaNs) and crc_error set -- the bus's FIFO-per-(src, tag)
//     guarantee delivers it before the eventual good attempt, forcing
//     the receive path to actually exercise the discard logic;
//   * a dropped attempt enqueues nothing; its cost is the timeout;
//   * the final good attempt carries the pristine payload, the total
//     recovery_us delay folded into its arrival stamp, and the attempt
//     number, from which the receiver reconstructs drop counts.
//
// With no FaultPlan every call degenerates to the raw bus operation with
// zero extra clock or accounting effects: fault-free runs stay
// bit-identical to the pre-fault-layer library (regression-locked).
//
// Recovery cost lands in Accounting::retrans_us plus a kFault trace
// span per recovered transfer; warnings are rate-limited so a fault
// storm cannot flood the log.
//
// Hard failures (PR 4) hook in at the same choke point:
//
//   * every send/recv is a communication point: a rank whose scheduled
//     fail-stop time has passed dies here (Membership::maybe_fail_self);
//   * a dead inter-SMP link (FaultPlan::link_kills) adds the
//     route-around penalty to the arrival stamp and flags the message,
//     so the receiver can attribute the detour (reroute_us bucket);
//   * a blocking recv from a silent peer does not burn the retry budget
//     or the bus's 30 s real-time watchdog: once the plan confirms the
//     peer's scheduled fail-stop, the receiver escalates to the
//     membership service, which publishes the collective NodeDown
//     verdict (poisons the bus) and unwinds this epoch.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "support/logging.hpp"

namespace hyades::comm {

// Thrown when a transfer exhausts FaultPlan::max_attempts -- with
// per-attempt fault probability p < 1 this is a (1-p)^-64 event, i.e.
// the modeled link is effectively dead, which no retry policy fixes.
struct DeliveryFailure : std::runtime_error {
  DeliveryFailure(int on_rank, int to_peer, std::uint64_t xfer_serial,
                  int tries)
      : std::runtime_error(
            "reliable delivery: rank " + std::to_string(on_rank) + " -> " +
            std::to_string(to_peer) + " serial " +
            std::to_string(xfer_serial) + " still faulted after " +
            std::to_string(tries) + " attempts"),
        rank(on_rank), peer(to_peer), serial(xfer_serial), attempts(tries) {}
  int rank, peer;
  std::uint64_t serial;
  int attempts;
};

// Per-rank counters for the reliability protocol (the sender and
// receiver sides of this rank's transfers).  Mirrored into the rank's
// Accounting; exposed separately for tests and the fault-sweep bench.
struct ReliableStats {
  std::uint64_t sent = 0;            // reliable transfers originated
  std::uint64_t retransmits = 0;     // extra attempts beyond the first
  std::uint64_t crc_rejects = 0;     // flagged attempts discarded (NAK'd)
  std::uint64_t drops_detected = 0;  // attempts recovered via timeout
  Microseconds retrans_us = 0;       // total recovery delay charged
  std::uint64_t degraded_sends = 0;  // transfers received via route-around
  Microseconds reroute_us = 0;       // total route-around delay charged
  std::uint64_t warns_emitted = 0;   // recovery warnings actually logged
  std::uint64_t warns_suppressed = 0;  // swallowed by the rate limiter
};

class Reliable {
 public:
  explicit Reliable(cluster::RankContext& ctx) : ctx_(ctx) {}

  // Send `data` to absolute rank `to` with fault-free arrival time
  // `stamp`.  Applies the fault/retransmit simulation iff a FaultPlan is
  // enabled and the destination is on another SMP.
  void send(int to, int tag, std::vector<double> data, Microseconds stamp);

  // Receive the next good message from (from, tag): drains CRC-flagged
  // ghost attempts (counting a NAK each), validates serial/attempt
  // bookkeeping (fail fast on protocol corruption), charges recovery
  // cost and records the kFault span.
  cluster::Message recv(int from, int tag);

  // Non-blocking variant: drains any ghosts already queued; returns the
  // good message if present, nullopt otherwise.  Never advances the
  // virtual clock.
  std::optional<cluster::Message> try_recv(int from, int tag);

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }

 private:
  // Handle one arrived attempt.  Returns the message if it is a good
  // (unflagged) attempt, nullopt if it was a ghost that was discarded.
  std::optional<cluster::Message> accept(cluster::Message m, int from,
                                         int tag);
  void warn_recovery(const char* what, int from, std::uint64_t serial,
                     int attempt, Microseconds t);

  cluster::RankContext& ctx_;
  ReliableStats stats_;
  // Next outbound serial per destination rank.
  std::map<int, std::uint64_t> next_serial_;
  // Serial of the ghost sequence currently being drained per
  // (src, tag) stream, for fail-fast continuity checks.
  struct StreamState {
    std::uint64_t serial = std::numeric_limits<std::uint64_t>::max();
    int last_attempt = -1;    // -1: no ghost drained for this stream
    std::int64_t ghosts = 0;  // flagged attempts seen for `serial`
  };
  std::map<std::pair<int, int>, StreamState> streams_;
  RateLimiter warn_limiter_{/*burst=*/5, /*every=*/256};
};

}  // namespace hyades::comm
