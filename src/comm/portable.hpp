// Portable, general-purpose message passing -- the counterpart of the
// paper's remark that "non-critical communication is implemented in a
// portable way using MPI or shared memory, but performance critical
// communication, exchange and global sum, can be customized for the
// specific hardware".
//
// This layer offers the familiar MPI-flavoured verbs (send/recv, bcast,
// gather, allreduce) implemented generically over the interconnect's
// LogP/transfer costs with binomial trees.  It is deliberately *not*
// tuned: the ablation benches show how much the application-specific
// primitives in comm.hpp buy over going through this layer.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/runtime.hpp"

namespace hyades::comm {

class Portable {
 public:
  explicit Portable(cluster::RankContext& ctx, int rank_base = 0,
                    int nranks = -1);

  [[nodiscard]] int rank() const { return ctx_.rank() - rank_base_; }
  [[nodiscard]] int size() const { return nranks_; }

  // Point to point (tags must stay below 4096; the implementation
  // namespaces them away from the tuned primitives' tag space).
  void send(int dst, int tag, std::vector<double> data);
  std::vector<double> recv(int src, int tag);

  // Broadcast `data` from `root` (binomial tree).
  void bcast(std::vector<double>& data, int root);

  // Gather every rank's vector at `root`; the result at root is indexed
  // by group rank, other ranks get an empty vector.
  std::vector<std::vector<double>> gather(const std::vector<double>& mine,
                                          int root);

  // Tree reduce + broadcast (contrast with Comm::global_sum's
  // latency-optimized butterfly).
  double allreduce_sum(double x);

 private:
  [[nodiscard]] int abs(int group_rank) const { return rank_base_ + group_rank; }
  [[nodiscard]] Microseconds msg_cost(std::size_t doubles) const;

  cluster::RankContext& ctx_;
  int rank_base_;
  int nranks_;
};

}  // namespace hyades::comm
