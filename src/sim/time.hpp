// Simulated time for the discrete-event core.
//
// Time is an integer count of picoseconds.  Integer time makes event
// ordering exact and the simulation bit-reproducible; picosecond
// resolution is fine enough that the paper's smallest constant
// (0.15 us per router stage) is represented without rounding.
#pragma once

#include <cstdint>

namespace hyades::sim {

using SimTime = std::int64_t;  // picoseconds

constexpr SimTime kPsPerNs = 1'000;
constexpr SimTime kPsPerUs = 1'000'000;

constexpr SimTime from_us(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kPsPerUs) + 0.5);
}
constexpr SimTime from_ns(double ns) {
  return static_cast<SimTime>(ns * static_cast<double>(kPsPerNs) + 0.5);
}
constexpr double to_us(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerUs);
}

// Time to serialize `bytes` onto a channel of `mbytes_per_sec` bandwidth.
// (1 MByte/sec == 1 byte/us.)
constexpr SimTime transfer_time(std::int64_t bytes, double mbytes_per_sec) {
  return from_us(static_cast<double>(bytes) / mbytes_per_sec);
}

}  // namespace hyades::sim
