#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyades::sim {

EventId Scheduler::schedule_at(SimTime when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  ++live_events_;
  return id;
}

EventId Scheduler::schedule_after(SimTime delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end()) {
    return false;
  }
  // We cannot cheaply verify the event is still queued, so mark it and
  // let pop_next skip it; live_events_ is decremented lazily there.
  cancelled_.push_back(id);
  return live_events_ > 0;
}

bool Scheduler::pop_next(Event& out) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      if (live_events_ > 0) --live_events_;
      continue;
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

bool Scheduler::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  now_ = ev.when;
  --live_events_;
  ++executed_;
  ev.fn();
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

void Scheduler::run_until(SimTime until) {
  while (true) {
    Event ev;
    if (!pop_next(ev)) break;
    if (ev.when > until) {
      // Put it back; heap push preserves its original sequence number so
      // ordering among equal-time events is unchanged.
      queue_.push(std::move(ev));
      now_ = until;
      return;
    }
    now_ = ev.when;
    --live_events_;
    ++executed_;
    ev.fn();
  }
  now_ = std::max(now_, until);
}

}  // namespace hyades::sim
