// Event-driven simulation core.
//
// A Scheduler owns a priority queue of (time, sequence, callback) events.
// Ties in time are broken by insertion order, which makes runs
// deterministic.  Entities (routers, links, NIUs, DMA engines) schedule
// callbacks against the shared Scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace hyades::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // Schedule `fn` to run at absolute time `when` (must be >= now()).
  // Returns an id usable with cancel().
  EventId schedule_at(SimTime when, EventFn fn);

  // Schedule `fn` to run `delay` after the current time.
  EventId schedule_after(SimTime delay, EventFn fn);

  // Cancel a pending event.  Returns false if it already ran, was already
  // cancelled, or the id is unknown.
  bool cancel(EventId id);

  // Run one event; returns false if the queue is empty.
  bool step();

  // Run until the queue drains or `limit` events have executed.
  // Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  // Run until simulated time would exceed `until` (events at exactly
  // `until` are executed).  Advances now() to `until` if the queue drains
  // earlier.
  void run_until(SimTime until);

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    EventFn fn;

    // min-heap on (when, seq)
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_next(Event& out);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<EventId> cancelled_;  // ids cancelled but still in the heap
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hyades::sim
