#include "cluster/runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "cluster/fault.hpp"
#include "cluster/membership.hpp"
#include "support/logging.hpp"

namespace hyades::cluster {

namespace {
// Straggler detection is logged once per rank with a global limiter so
// a long run does not repeat the same line every compute call.
RateLimiter g_straggler_warn_limiter(/*burst=*/4, /*every=*/1u << 20);
}  // namespace

void AbortableBarrier::arrive_and_wait() {
  support::MutexLock lock(mu_);
  if (aborted_) throw std::runtime_error("SMP barrier aborted");
  const std::uint64_t gen = generation_;
  if (++waiting_ == count_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(mu_, [&] {
    mu_.assert_held();
    return generation_ != gen || aborted_;
  });
  if (generation_ == gen && aborted_) {
    throw std::runtime_error("SMP barrier aborted");
  }
}

void AbortableBarrier::abort() {
  support::MutexLock lock(mu_);
  aborted_ = true;
  cv_.notify_all();
}

void AbortableBarrier::reset() {
  support::MutexLock lock(mu_);
  aborted_ = false;
  waiting_ = 0;
}

RankContext::RankContext(Runtime& rt, int rank)
    : rt_(rt), rank_(rank), epoch_(rt.epoch()), host_map_(rt.host_map()) {
  recompute_elastic_factor();
}

RankContext::~RankContext() = default;

int RankContext::nranks() const { return rt_.config().nranks(); }
int RankContext::smp() const { return rank_ / rt_.config().procs_per_smp; }
int RankContext::local_rank() const {
  return rank_ % rt_.config().procs_per_smp;
}
int RankContext::procs_per_smp() const { return rt_.config().procs_per_smp; }
int RankContext::smp_of(int rank) const {
  return rank / rt_.config().procs_per_smp;
}

int RankContext::host_smp_of(int rank) const {
  if (host_map_.empty()) return rank / rt_.config().procs_per_smp;
  return host_map_[static_cast<std::size_t>(rank)];
}

void RankContext::rehome_rank(int rank, int smp) {
  if (host_map_.empty()) {
    const int ppp = rt_.config().procs_per_smp;
    host_map_.resize(static_cast<std::size_t>(nranks()));
    for (int r = 0; r < nranks(); ++r) {
      host_map_[static_cast<std::size_t>(r)] = r / ppp;
    }
  }
  host_map_[static_cast<std::size_t>(rank)] = smp;
  recompute_elastic_factor();
}

void RankContext::recompute_elastic_factor() {
  elastic_factor_ = 1.0;
  if (host_map_.empty()) return;
  const int mine = host_smp_of(rank_);
  int hosted = 0;
  for (int h : host_map_) {
    if (h == mine) ++hosted;
  }
  const int ppp = rt_.config().procs_per_smp;
  // Oversubscription: a survivor SMP hosting adopted tiles timeshares
  // its processors round-robin, so every hosted rank computes slower by
  // the occupancy ratio.  At or below capacity the factor stays 1.0 --
  // identity placement is bit-identical to the pre-elastic machine.
  if (hosted > ppp) {
    elastic_factor_ = static_cast<double>(hosted) / static_cast<double>(ppp);
  }
}

const net::Interconnect& RankContext::net() const {
  return *rt_.config().interconnect;
}
const MachineConfig& RankContext::config() const { return rt_.config(); }

void RankContext::compute(double flops, double mflops) {
  if (flops < 0 || mflops <= 0) {
    throw std::invalid_argument("RankContext::compute: bad arguments");
  }
  Microseconds dt = flops / mflops;  // MFlop/s == flops per us
  const FaultPlan* plan = faults();
  if (plan != nullptr && plan->has_straggler() &&
      plan->straggler_rank == rank_) {
    dt *= plan->straggler_factor;
    if (flops > 0 && g_straggler_warn_limiter.admit()) {
      log_warn() << "fault: rank " << rank_ << " is a configured straggler ("
                 << plan->straggler_factor << "x slower) at t="
                 << clock_.now() << " us";
    }
  }
  if (elastic_factor_ > 1.0) dt *= elastic_factor_;
  clock_.advance(dt);
  acct_.compute_us += dt;
  acct_.flops += flops;
}

const FaultPlan* RankContext::faults() const { return rt_.config().faults; }

void RankContext::send_raw(int to, int tag, std::vector<double> data,
                           Microseconds arrival_stamp) {
  Message m;
  m.src = rank_;
  m.tag = tag + epoch_ * kEpochTagStride;
  m.data = std::move(data);
  m.stamp_us = arrival_stamp;
  rt_.bus().send(to, std::move(m));
}

void RankContext::send_msg(int to, Message m) {
  m.src = rank_;
  m.tag += epoch_ * kEpochTagStride;
  rt_.bus().send(to, std::move(m));
}

Message RankContext::recv_raw(int from, int tag) {
  Message m = rt_.bus().recv(rank_, from, tag + epoch_ * kEpochTagStride);
  m.tag -= epoch_ * kEpochTagStride;
  return m;
}

std::optional<Message> RankContext::try_recv_raw(int from, int tag) {
  std::optional<Message> m =
      rt_.bus().try_recv(rank_, from, tag + epoch_ * kEpochTagStride);
  if (m.has_value()) m->tag -= epoch_ * kEpochTagStride;
  return m;
}

void RankContext::smp_sync() {
  if (procs_per_smp() == 1) return;
  SmpShared& s = rt_.smp_shared(smp());
  s.clock_slots[static_cast<std::size_t>(local_rank())] = clock_.now();
  s.barrier.arrive_and_wait();
  Microseconds mx = 0;
  for (int lr = 0; lr < procs_per_smp(); ++lr) {
    mx = std::max(mx, s.clock_slots[static_cast<std::size_t>(lr)]);
  }
  s.barrier.arrive_and_wait();
  // Accounting is the caller's job (the comm primitives charge their
  // whole window once, which includes these sync advances).
  clock_.advance_to(mx);
  clock_.advance(rt_.config().smp_barrier_us);
}

void RankContext::smp_publish(double v) {
  rt_.smp_shared(smp()).slots_d[static_cast<std::size_t>(local_rank())] = v;
}
void RankContext::smp_publish_bytes(std::int64_t a, std::int64_t b) {
  auto& slots = rt_.smp_shared(smp()).slots_i;
  slots[static_cast<std::size_t>(local_rank()) * 2] = a;
  slots[static_cast<std::size_t>(local_rank()) * 2 + 1] = b;
}
double RankContext::smp_peek(int local_rank) const {
  return rt_.smp_shared(smp()).slots_d[static_cast<std::size_t>(local_rank)];
}
std::pair<std::int64_t, std::int64_t> RankContext::smp_peek_bytes(
    int local_rank) const {
  const auto& slots = rt_.smp_shared(smp()).slots_i;
  return {slots[static_cast<std::size_t>(local_rank) * 2],
          slots[static_cast<std::size_t>(local_rank) * 2 + 1]};
}

void RankContext::charge_comm(Microseconds start_us) {
  acct_.comm_us += clock_.now() - start_us;
}

void RankContext::charge_overlap(Microseconds hidden_us) {
  acct_.overlap_us += hidden_us;
}

void RankContext::charge_imbalance(Microseconds wait_us) {
  acct_.imbalance_us += wait_us;
}

void RankContext::charge_retrans(Microseconds recovery_us) {
  acct_.retrans_us += recovery_us;
}

void RankContext::charge_reroute(Microseconds reroute_us) {
  acct_.reroute_us += reroute_us;
  ++acct_.degraded_sends;
}

void RankContext::charge_restart(Microseconds restart_us) {
  acct_.restart_us += restart_us;
  ++acct_.restarts;
}

void RankContext::charge_migrate(Microseconds migrate_us) {
  acct_.migrate_us += migrate_us;
  ++acct_.migrations;
}

void RankContext::charge_rebalance(Microseconds rebalance_us) {
  acct_.migrate_us += rebalance_us;
  ++acct_.rebalances;
}

void RankContext::note_downgrades(int count) {
  acct_.downgrades += count;
}

Membership* RankContext::membership() {
  const FaultPlan* plan = faults();
  if (plan == nullptr || !plan->has_node_kills()) return nullptr;
  if (!membership_) membership_ = std::make_unique<Membership>(*this, *plan);
  return membership_.get();
}

void RankContext::declare_node_down(const NodeDownVerdict& verdict) {
  rt_.bus().declare_down(verdict);
}

Runtime::Runtime(MachineConfig cfg) : cfg_(cfg), bus_(cfg.nranks()) {
  if (cfg_.interconnect == nullptr) {
    throw std::invalid_argument("Runtime: interconnect model is required");
  }
  if (cfg_.smp_count < 1 || cfg_.procs_per_smp < 1) {
    throw std::invalid_argument("Runtime: bad machine shape");
  }
  // Any positive smp_count is valid: the comm layer folds non-power-of-two
  // groups onto the largest butterfly core (see comm::Comm).
  smps_.reserve(static_cast<std::size_t>(cfg_.smp_count));
  for (int i = 0; i < cfg_.smp_count; ++i) {
    smps_.push_back(std::make_unique<SmpShared>(cfg_.procs_per_smp));
  }
}

void Runtime::run(const std::function<void(RankContext&)>& body) {
  const int n = cfg_.nranks();
  for (auto& s : smps_) s->barrier.reset();
  acct_.assign(static_cast<std::size_t>(n), Accounting{});
  clocks_.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, r, &body, &errors] {
      RankContext ctx(*this, r);
      try {
        body(ctx);
        // lint:allow(catch-all): rank-thread trampoline -- every unwind
        // (including RankFailStop) is captured and rethrown on the
        // driver thread below; nothing is swallowed.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Release any sibling blocked on the SMP barrier.
        if (cfg_.procs_per_smp > 1) {
          smp_shared(ctx.smp()).barrier.abort();
        }
      }
      acct_[static_cast<std::size_t>(r)] = ctx.accounting();
      clocks_[static_cast<std::size_t>(r)] = ctx.clock().now();
    });
  }
  for (auto& t : threads) t.join();
  // A NodeDown verdict is the root cause of an aborted epoch; sibling
  // ranks unwinding through the poisoned bus or an aborted SMP barrier
  // produce collateral runtime_errors.  Surface the verdict first.
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const NodeDownError&) {
      throw;
      // lint:allow(catch-all): triage pass ordering root cause above
      // collateral errors; the loop below rethrows whatever remains.
    } catch (...) {
    }
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

Microseconds Runtime::max_clock() const {
  Microseconds mx = 0;
  for (Microseconds c : clocks_) mx = std::max(mx, c);
  return mx;
}

}  // namespace hyades::cluster
