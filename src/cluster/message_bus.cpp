#include "cluster/message_bus.hpp"

#include <chrono>
#include <stdexcept>

namespace hyades::cluster {

MessageBus::MessageBus(int nranks) {
  if (nranks < 1) throw std::invalid_argument("MessageBus: nranks < 1");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
}

void MessageBus::send(int to, Message m) {
  if (down()) throw NodeDownError(down_verdict());
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(to));
  {
    support::MutexLock lock(box.mu);
    box.queues[{m.src, m.tag}].push_back(std::move(m));
  }
  box.cv.notify_all();
}

Message MessageBus::recv(int me, int from, int tag, int timeout_ms) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  support::MutexLock lock(box.mu);
  auto& q = box.queues[{from, tag}];
  if (!box.cv.wait_for(box.mu, std::chrono::milliseconds(timeout_ms), [&] {
        box.mu.assert_held();
        return !q.empty() || down();
      })) {
    throw std::runtime_error("MessageBus::recv: timeout (rank " +
                             std::to_string(me) + " waiting on " +
                             std::to_string(from) + " tag " +
                             std::to_string(tag) + ")");
  }
  if (down()) throw NodeDownError(down_verdict());
  Message m = std::move(q.front());
  q.pop_front();
  return m;
}

std::optional<Message> MessageBus::try_recv(int me, int from, int tag) {
  if (down()) throw NodeDownError(down_verdict());
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  support::MutexLock lock(box.mu);
  auto it = box.queues.find({from, tag});
  if (it == box.queues.end() || it->second.empty()) return std::nullopt;
  Message m = std::move(it->second.front());
  it->second.pop_front();
  return m;
}

void MessageBus::declare_down(const NodeDownVerdict& verdict) {
  {
    support::MutexLock lock(verdict_mu_);
    if (down_.load(std::memory_order_relaxed)) return;  // first verdict wins
    verdict_ = verdict;
    down_.store(true, std::memory_order_release);
  }
  // Wake every rank blocked in recv so the abort is prompt.
  for (auto& box : boxes_) box->cv.notify_all();
}

NodeDownVerdict MessageBus::down_verdict() const {
  support::MutexLock lock(verdict_mu_);
  return verdict_;
}

void MessageBus::reset_down() {
  support::MutexLock lock(verdict_mu_);
  verdict_ = NodeDownVerdict{};
  down_.store(false, std::memory_order_release);
}

bool MessageBus::poll(int me, int from, int tag) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  support::MutexLock lock(box.mu);
  auto it = box.queues.find({from, tag});
  return it != box.queues.end() && !it->second.empty();
}

}  // namespace hyades::cluster
