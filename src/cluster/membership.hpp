// Heartbeat/membership service: converts a peer's permanent silence
// into a collectively agreed NodeDown verdict.
//
// Liveness information is piggybacked on normal traffic (every accepted
// bulk message refreshes the sender's last-heard time); when a sender's
// retransmit watchdog keeps firing against one peer, it asks this
// service instead of burning the whole retry budget.  The service fires
// `FaultPlan::dead_peer_probes` idle-time heartbeat probes on the
// reserved tag (costed through the virtual clock like any small
// message) and, if the plan confirms the peer's scheduled fail-stop,
// escalates: the plan-pure verdict {rank, epoch, kill time + heartbeat
// deadline} is published by poisoning the MessageBus, every survivor
// unwinds with NodeDownError, and the resilient driver restarts the
// epoch from the last durable checkpoint.
//
// Verdicts are pure functions of the fault plan -- never of a racing
// observer's clock -- so whichever rank detects first publishes exactly
// the verdict every other survivor would have.
#pragma once

#include <vector>

#include "cluster/fault.hpp"
#include "support/units.hpp"

namespace hyades::cluster {

class RankContext;

// Reserved bus tag for heartbeat probes; sits between the coupler
// (4000s) and portable (8000s) tag spaces and far below the epoch tag
// stride.
inline constexpr int kTagMembership = 5000;

class Membership {
 public:
  Membership(RankContext& ctx, const FaultPlan& plan);

  // Piggybacked liveness: an accepted message stamped `stamp_us`
  // proves the sender was alive then.
  void note_alive(int peer, Microseconds stamp_us);
  [[nodiscard]] Microseconds last_heard(int peer) const;

  // Fail-stop self-check, called at every communication point.  If the
  // plan kills this rank in the current epoch and the virtual clock has
  // reached the kill time, the rank dies here (throws RankFailStop) --
  // it never sends or receives again.
  void maybe_fail_self();

  // The scheduled kill explaining `peer`'s silence at the current
  // virtual time, or nullptr when the peer should still be alive (its
  // silence is transient loss; keep retrying).  Kills are node-granular:
  // a kill naming any rank of the peer's SMP explains the peer.
  [[nodiscard]] const NodeKill* killed_peer(int peer) const;

  // The kill (if any) scheduled this epoch for the node hosting `rank`,
  // regardless of whether its time has come -- the resilient driver uses
  // this to classify collateral errors on a dying node.
  [[nodiscard]] const NodeKill* scheduled_kill(int rank) const;

  // Escalate a silent peer into the collective verdict: probe it
  // `dead_peer_probes` times on the reserved tag, advance to the
  // plan-pure detection time, record a kNodeDown span, poison the bus,
  // and unwind this rank's epoch by throwing NodeDownError.
  [[noreturn]] void escalate(int peer, const NodeKill& kill);

  // The canonical verdict for the current epoch: every kill whose
  // heartbeat deadline has expired at the detection fixpoint is
  // coalesced into one multi-rank dead set.  Starting from the earliest
  // kill's deadline, the detection time expands to the latest deadline
  // of the kills it covers until stable, so two boards dying inside one
  // heartbeat window yield ONE verdict naming both -- and the result is
  // a pure function of (plan, epoch), independent of which rank
  // escalates which peer first.
  [[nodiscard]] NodeDownVerdict coalesced_verdict() const;

 private:
  // The kill (if any) scheduled for the current epoch on the given SMP.
  // Node kills are SMP-granular -- a crashed node takes every rank it
  // hosts with it -- so both the self-check and peer diagnosis match on
  // the SMP, not the exact rank.
  [[nodiscard]] const NodeKill* kill_on_smp(int smp) const;

  RankContext& ctx_;
  const FaultPlan& plan_;
  std::vector<Microseconds> last_heard_;
};

// The coalescing fixpoint as a pure function of (plan, epoch) -- what
// Membership::coalesced_verdict computes, callable without a live rank.
// The resilient driver uses it when an epoch ends with *every* rank
// silent (each board hosted a kill-named rank): no survivor existed to
// escalate, so the driver synthesizes the canonical verdict the
// survivors would have published.  Returns rank == -1 when the plan
// schedules no kills for the epoch.
[[nodiscard]] NodeDownVerdict coalesce_expired_kills(const FaultPlan& plan,
                                                     int epoch);

}  // namespace hyades::cluster
