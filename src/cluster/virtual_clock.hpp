// Per-rank virtual time.
//
// The cluster runtime executes ranks on real threads but accounts time in
// simulated microseconds: compute advances the clock by flops divided by
// the modeled processor rate, and communication advances it per the
// interconnect timing model with Lamport-style max() synchronization on
// message timestamps.  The result is deterministic, independent of host
// scheduling, and calibrated to the paper's 1999 hardware.
#pragma once

#include <algorithm>

#include "support/units.hpp"

namespace hyades::cluster {

class VirtualClock {
 public:
  [[nodiscard]] Microseconds now() const { return t_; }

  void advance(Microseconds dt) { t_ += dt; }

  // Jump forward to `t` if it is in the future (receive-side sync rule).
  void advance_to(Microseconds t) { t_ = std::max(t_, t); }

  void reset() { t_ = 0.0; }

 private:
  Microseconds t_ = 0.0;
};

}  // namespace hyades::cluster
