#include "cluster/membership.hpp"

#include <algorithm>

#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "support/logging.hpp"

namespace hyades::cluster {

namespace {
// Membership escalations warn at most a handful of times per process: a
// heartbeat storm against a dead peer must not flood the log.
RateLimiter g_membership_warn_limiter(/*burst=*/4, /*every=*/256);
}  // namespace

Membership::Membership(RankContext& ctx, const FaultPlan& plan)
    : ctx_(ctx),
      plan_(plan),
      last_heard_(static_cast<std::size_t>(ctx.nranks()), 0.0) {}

void Membership::note_alive(int peer, Microseconds stamp_us) {
  Microseconds& t = last_heard_[static_cast<std::size_t>(peer)];
  t = std::max(t, stamp_us);
}

Microseconds Membership::last_heard(int peer) const {
  return last_heard_[static_cast<std::size_t>(peer)];
}

const NodeKill* Membership::kill_on_smp(int smp) const {
  // Kill matching is *host*-granular: a kill naming rank R takes down
  // the physical board R's tile is hosted on right now, together with
  // every other tile hosted there.  With identity placement this is
  // exactly the old structural smp_of() matching.
  for (const NodeKill& k : plan_.node_kills) {
    if (k.epoch == ctx_.epoch() && ctx_.host_smp_of(k.rank) == smp) return &k;
  }
  return nullptr;
}

void Membership::maybe_fail_self() {
  const NodeKill* kill = kill_on_smp(ctx_.host_smp());
  if (kill != nullptr && ctx_.clock().now() >= kill->at_us) {
    throw RankFailStop{*kill};
  }
}

const NodeKill* Membership::scheduled_kill(int rank) const {
  return kill_on_smp(ctx_.host_smp_of(rank));
}

const NodeKill* Membership::killed_peer(int peer) const {
  const NodeKill* kill = kill_on_smp(ctx_.host_smp_of(peer));
  if (kill == nullptr) return nullptr;
  // Failure-detector assumption: the heartbeat deadline exceeds the
  // virtual-clock skew between partners within a step, so a silent peer
  // whose kill time lies within [now, now + deadline] may already have
  // reached it on its own (slightly ahead) clock.  Without the slack a
  // receiver resting just below the kill time would wait forever.
  if (ctx_.clock().now() + plan_.heartbeat_deadline_us < kill->at_us) {
    return nullptr;
  }
  return kill;
}

NodeDownVerdict coalesce_expired_kills(const FaultPlan& plan, int epoch) {
  // Collect this epoch's kills and find the earliest detection deadline.
  std::vector<const NodeKill*> kills;
  for (const NodeKill& k : plan.node_kills) {
    if (k.epoch == epoch) kills.push_back(&k);
  }
  NodeDownVerdict verdict;
  verdict.epoch = epoch;
  if (kills.empty()) return verdict;

  Microseconds t = kills.front()->at_us + plan.heartbeat_deadline_us;
  for (const NodeKill* k : kills) {
    t = std::min(t, k->at_us + plan.heartbeat_deadline_us);
  }
  // Fixpoint: any kill that fired before the current detection time is
  // part of the same casualty event, and detecting it takes until its
  // own deadline -- expand until no new kill is absorbed.
  for (;;) {
    Microseconds expanded = t;
    for (const NodeKill* k : kills) {
      if (k->at_us <= t) {
        expanded = std::max(expanded, k->at_us + plan.heartbeat_deadline_us);
      }
    }
    if (expanded == t) break;
    t = expanded;
  }
  for (const NodeKill* k : kills) {
    if (k->at_us <= t) verdict.ranks.push_back(k->rank);
  }
  std::sort(verdict.ranks.begin(), verdict.ranks.end());
  verdict.ranks.erase(
      std::unique(verdict.ranks.begin(), verdict.ranks.end()),
      verdict.ranks.end());
  verdict.rank = verdict.ranks.front();
  verdict.detected_us = t;
  return verdict;
}

NodeDownVerdict Membership::coalesced_verdict() const {
  return coalesce_expired_kills(plan_, ctx_.epoch());
}

void Membership::escalate(int peer, const NodeKill& kill) {
  // Idle-time probes on the reserved tag: fire-and-forget heartbeats the
  // dead peer will never answer, each costed one small-message send
  // through the virtual clock.
  const Microseconds probe_cost = ctx_.net().small_message(16).os;
  for (int i = 0; i < plan_.dead_peer_probes; ++i) {
    ctx_.send_raw(peer, kTagMembership, {static_cast<double>(ctx_.rank())},
                  ctx_.clock().now() + ctx_.net().small_message(16).half_rtt());
    ctx_.clock().advance(probe_cost);
  }

  // Plan-pure verdict: the canonical coalesced dead set of this epoch,
  // with the detection fixpoint as its time -- never this rank's
  // (scheduling-dependent) clock, and never just the one peer this rank
  // happened to be talking to.  Whichever rank escalates whichever peer
  // first publishes the identical verdict.
  const NodeDownVerdict verdict = coalesced_verdict();

  const Microseconds began = ctx_.clock().now();
  ctx_.clock().advance_to(verdict.detected_us);
  if (ctx_.tracer() != nullptr) {
    ctx_.tracer()->record("node_down", SpanCat::kNodeDown, began,
                          ctx_.clock().now());
  }
  if (g_membership_warn_limiter.admit()) {
    log_warn() << "membership: rank " << ctx_.rank() << " declares rank "
               << peer << " DOWN (epoch " << verdict.epoch << ", "
               << verdict.ranks.size() << " rank(s) in the coalesced verdict, "
               << "silent since t=" << kill.at_us << " us, deadline "
               << plan_.heartbeat_deadline_us << " us)";
  }
  ctx_.declare_node_down(verdict);
  throw NodeDownError(verdict);
}

}  // namespace hyades::cluster
