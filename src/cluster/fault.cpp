#include "cluster/fault.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace hyades::cluster {

FaultPlan::Fate FaultPlan::fate(int src, int dst, std::uint64_t serial,
                                int attempt) const {
  // One uniform draw per attempt; the [0, corrupt_prob) slice corrupts,
  // the adjacent [corrupt_prob, corrupt_prob + drop_prob) slice drops.
  // Key domains are disjoint by position, so (src=1, dst=2) and
  // (src=2, dst=1) draw independent streams.
  const double u = hash_unit(
      seed, {0x636c757374657231ull,  // domain tag: cluster fault stream
             static_cast<std::uint64_t>(src), static_cast<std::uint64_t>(dst),
             serial, static_cast<std::uint64_t>(attempt)});
  if (u < corrupt_prob) return Fate::kCorrupt;
  if (u < corrupt_prob + drop_prob) return Fate::kDrop;
  return Fate::kOk;
}

Microseconds FaultPlan::backoff(int attempt) const {
  if (attempt <= 0) return 0.0;
  Microseconds b = backoff_us;
  for (int i = 1; i < attempt && b < backoff_max_us; ++i) b *= 2.0;
  return std::min(b, backoff_max_us);
}

const NodeKill* FaultPlan::node_kill(int rank, int epoch) const {
  for (const NodeKill& k : node_kills) {
    if (k.rank == rank && k.epoch == epoch) return &k;
  }
  return nullptr;
}

bool FaultPlan::link_dead(int smp_a, int smp_b, Microseconds now_us) const {
  for (const LinkKill& k : link_kills) {
    const bool match = (k.smp_a == smp_a && k.smp_b == smp_b) ||
                       (k.smp_a == smp_b && k.smp_b == smp_a);
    if (match && now_us >= k.at_us) return true;
  }
  return false;
}

}  // namespace hyades::cluster
