#include "cluster/fault.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace hyades::cluster {

FaultPlan::Fate FaultPlan::fate(int src, int dst, std::uint64_t serial,
                                int attempt) const {
  // One uniform draw per attempt; the [0, corrupt_prob) slice corrupts,
  // the adjacent [corrupt_prob, corrupt_prob + drop_prob) slice drops.
  // Key domains are disjoint by position, so (src=1, dst=2) and
  // (src=2, dst=1) draw independent streams.
  const double u = hash_unit(
      seed, {0x636c757374657231ull,  // domain tag: cluster fault stream
             static_cast<std::uint64_t>(src), static_cast<std::uint64_t>(dst),
             serial, static_cast<std::uint64_t>(attempt)});
  if (u < corrupt_prob) return Fate::kCorrupt;
  if (u < corrupt_prob + drop_prob) return Fate::kDrop;
  return Fate::kOk;
}

Microseconds FaultPlan::backoff(int attempt) const {
  if (attempt <= 0) return 0.0;
  Microseconds b = backoff_us;
  for (int i = 1; i < attempt && b < backoff_max_us; ++i) b *= 2.0;
  return std::min(b, backoff_max_us);
}

}  // namespace hyades::cluster
