// Deterministic fault injection for the threaded cluster world.
//
// A FaultPlan decides, per bulk-message attempt, whether the transfer
// arrives intact, arrives CRC-flagged (Arctic's per-stage CRC marks the
// packet, the endpoint surfaces a 1-bit status), or is lost outright
// (a stalled NIU dropping its rx queue).  Decisions are *pure functions*
// of (seed, src, dst, serial, attempt) hashed through the SplitMix64
// finalizer -- no shared mutable RNG state -- so an injected fault
// pattern is bit-identical across runs regardless of host thread
// scheduling, and consuming fault decisions cannot perturb any other
// random stream (notably the fabric's random-uproute routing).
//
// The plan also models straggler ranks (a configurable compute slowdown
// on selected ranks) and carries the reliability protocol's timing
// parameters: the receiver-side virtual-clock timeout that detects a
// dropped transfer, and the capped exponential backoff applied before
// each retransmit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/units.hpp"

namespace hyades::cluster {

// A permanent node fail-stop: during epoch `epoch`, the SMP node
// hosting `rank` dies -- every rank it hosts stops at its first
// communication point at or after virtual time `at_us` and never speaks
// again.  Restarted epochs (epoch > kill.epoch) run the node normally:
// the operator replaced the board.
struct NodeKill {
  int rank = -1;
  Microseconds at_us = 0.0;
  int epoch = 0;
};

// A permanent inter-SMP link death: from `at_us` on, bulk transfers
// between the two SMPs ride a longer route-around path (the fat tree's
// surviving diversity) and pay `FaultPlan::reroute_penalty_us` extra
// latency per transfer.  Timing-only: payload bits are untouched.
struct LinkKill {
  int smp_a = -1;
  int smp_b = -1;
  Microseconds at_us = 0.0;
};

// A hot node join: at the first checkpoint cut whose step is >= at_step,
// a replacement board for SMP `smp` is back in service -- ranks homed on
// that SMP but migrated elsewhere after a NodeKill return home and the
// load rebalances.  Keyed by *step*, not virtual time, so a replayed
// epoch re-applies the join identically (the application is idempotent).
struct NodeJoin {
  int smp = -1;
  long at_step = 0;
};

// The collectively agreed fail-stop verdict.  detected_us is plan-pure
// (kill time + heartbeat deadline), never a racing observer's clock, so
// every survivor publishes the identical verdict.
//
// Failures overlap at scale, so the verdict carries a dead *set*, not a
// first casualty: every kill of the epoch whose heartbeat deadline has
// expired by the detection fixpoint (see Membership::coalesced_verdict)
// is absorbed into `ranks`.  `rank` stays the primary casualty (the
// lowest kill-named rank of the set) for messages and single-failure
// consumers; `ranks` is the authoritative set for recovery planning.
struct NodeDownVerdict {
  int rank = -1;
  std::vector<int> ranks;  // coalesced kill-named ranks, sorted ascending
  int epoch = 0;
  Microseconds detected_us = 0.0;

  // The dead set for planners: `ranks` when coalescing filled it, else
  // the single primary casualty (manually built single-rank verdicts).
  [[nodiscard]] std::vector<int> dead_ranks() const {
    if (!ranks.empty()) return ranks;
    return rank >= 0 ? std::vector<int>{rank} : std::vector<int>{};
  }
};

// Thrown by every bus operation once a NodeDown verdict is declared:
// the surviving ranks unwind their epoch and the resilient driver
// restarts from the last durable checkpoint.
class NodeDownError : public std::runtime_error {
 public:
  explicit NodeDownError(const NodeDownVerdict& v)
      : std::runtime_error(
            "node down: rank " + std::to_string(v.rank) +
            (v.ranks.size() > 1
                 ? " (+" + std::to_string(v.ranks.size() - 1) +
                       " coalesced)"
                 : std::string()) +
            " (epoch " + std::to_string(v.epoch) + ", detected at t=" +
            std::to_string(v.detected_us) + " us)"),
        verdict(v) {}
  NodeDownVerdict verdict;
};

// Thrown inside a rank that reaches its own scheduled fail-stop point;
// deliberately NOT a std::exception so only the resilient driver's
// explicit handler treats it as "this rank went silent".
struct RankFailStop {
  NodeKill kill;
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-attempt fault probabilities for remote (inter-SMP) bulk
  // messages.  Intra-SMP traffic moves through shared memory and is not
  // subject to fabric faults.
  double corrupt_prob = 0.0;  // attempt arrives with the CRC bit set
  double drop_prob = 0.0;     // attempt never arrives (NIU/router stall)

  // Reliability protocol timing (virtual microseconds).
  Microseconds timeout_us = 500.0;      // drop detection watchdog
  Microseconds backoff_us = 25.0;       // base retransmit backoff
  Microseconds backoff_max_us = 800.0;  // exponential backoff cap

  // Hard cap on attempts per message: fault probabilities below 1 make
  // runaway retries astronomically unlikely, so hitting the cap means
  // the link is effectively dead and the protocol gives up (throws).
  int max_attempts = 64;

  // Straggler modeling: the given rank computes `straggler_factor`
  // times slower (its partners absorb the lateness as imbalance wait).
  int straggler_rank = -1;
  double straggler_factor = 1.0;

  // ---- hard failures --------------------------------------------------
  // Permanent fail-stops and link deaths (explicit schedules, same
  // determinism discipline as the probabilistic fates: everything below
  // is a pure function of the plan).
  std::vector<NodeKill> node_kills;
  std::vector<LinkKill> link_kills;

  // Hot joins consumed by the migrate-mode resilient driver: replacement
  // boards that come back mid-campaign (no effect under epoch restart,
  // which always relaunches on the home placement).
  std::vector<NodeJoin> node_joins;

  // Membership: a peer silent past `heartbeat_deadline_us` of virtual
  // time (no message, no heartbeat on the reserved tag) is declared
  // down.  Before declaring, the detector fires `dead_peer_probes`
  // heartbeat probes -- escalation, not retry-budget burn.
  Microseconds heartbeat_deadline_us = 2000.0;
  int dead_peer_probes = 3;

  // Virtual cost of one collective restart-from-checkpoint (relaunch +
  // state reload), charged to every rank of the new epoch.
  Microseconds restart_cost_us = 5000.0;

  // Virtual cost of adopting one dead node's tile by live migration:
  // loading the tile's durable checkpoint on the adopter, deliberately
  // far below restart_cost_us (survivors keep their in-memory state, so
  // only the dead tiles touch disk).  Charged to adopting ranks only.
  Microseconds migrate_cost_us = 1500.0;

  // Virtual cost of handing a migrated tile back to a hot-joined
  // replacement board (state handoff at a checkpoint cut).  Charged to
  // the rebalanced rank only.
  Microseconds rebalance_cost_us = 800.0;

  // Extra per-transfer latency between SMP pairs whose direct link died
  // (the route-around path crosses more router stages).
  Microseconds reroute_penalty_us = 3.0;

  enum class Fate { kOk, kCorrupt, kDrop };

  [[nodiscard]] bool enabled() const {
    return has_fates() || has_node_kills() || has_link_kills();
  }
  // Probabilistic per-attempt fates (corrupt/drop) are configured; the
  // reliability layer runs its retransmit episode simulation only then.
  [[nodiscard]] bool has_fates() const {
    return corrupt_prob > 0.0 || drop_prob > 0.0;
  }
  [[nodiscard]] bool has_straggler() const {
    return straggler_rank >= 0 && straggler_factor > 1.0;
  }
  [[nodiscard]] bool has_node_kills() const { return !node_kills.empty(); }
  [[nodiscard]] bool has_node_joins() const { return !node_joins.empty(); }
  [[nodiscard]] bool has_link_kills() const { return !link_kills.empty(); }

  // The kill scheduled for `rank` in `epoch`, or nullptr.
  [[nodiscard]] const NodeKill* node_kill(int rank, int epoch) const;

  // True when the direct link between the two SMPs is dead at virtual
  // time `now_us` (kills are permanent, symmetric in the SMP pair).
  [[nodiscard]] bool link_dead(int smp_a, int smp_b,
                               Microseconds now_us) const;

  // The fate of attempt number `attempt` of message `serial` from
  // src -> dst.  Pure function of the keys and the seed.
  [[nodiscard]] Fate fate(int src, int dst, std::uint64_t serial,
                          int attempt) const;

  // Capped exponential backoff before retransmit number `attempt`
  // (attempt 1 is the first retransmit): base * 2^(attempt-1), capped.
  [[nodiscard]] Microseconds backoff(int attempt) const;
};

}  // namespace hyades::cluster
