// Deterministic fault injection for the threaded cluster world.
//
// A FaultPlan decides, per bulk-message attempt, whether the transfer
// arrives intact, arrives CRC-flagged (Arctic's per-stage CRC marks the
// packet, the endpoint surfaces a 1-bit status), or is lost outright
// (a stalled NIU dropping its rx queue).  Decisions are *pure functions*
// of (seed, src, dst, serial, attempt) hashed through the SplitMix64
// finalizer -- no shared mutable RNG state -- so an injected fault
// pattern is bit-identical across runs regardless of host thread
// scheduling, and consuming fault decisions cannot perturb any other
// random stream (notably the fabric's random-uproute routing).
//
// The plan also models straggler ranks (a configurable compute slowdown
// on selected ranks) and carries the reliability protocol's timing
// parameters: the receiver-side virtual-clock timeout that detects a
// dropped transfer, and the capped exponential backoff applied before
// each retransmit.
#pragma once

#include <cstdint>

#include "support/units.hpp"

namespace hyades::cluster {

struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-attempt fault probabilities for remote (inter-SMP) bulk
  // messages.  Intra-SMP traffic moves through shared memory and is not
  // subject to fabric faults.
  double corrupt_prob = 0.0;  // attempt arrives with the CRC bit set
  double drop_prob = 0.0;     // attempt never arrives (NIU/router stall)

  // Reliability protocol timing (virtual microseconds).
  Microseconds timeout_us = 500.0;      // drop detection watchdog
  Microseconds backoff_us = 25.0;       // base retransmit backoff
  Microseconds backoff_max_us = 800.0;  // exponential backoff cap

  // Hard cap on attempts per message: fault probabilities below 1 make
  // runaway retries astronomically unlikely, so hitting the cap means
  // the link is effectively dead and the protocol gives up (throws).
  int max_attempts = 64;

  // Straggler modeling: the given rank computes `straggler_factor`
  // times slower (its partners absorb the lateness as imbalance wait).
  int straggler_rank = -1;
  double straggler_factor = 1.0;

  enum class Fate { kOk, kCorrupt, kDrop };

  [[nodiscard]] bool enabled() const {
    return corrupt_prob > 0.0 || drop_prob > 0.0;
  }
  [[nodiscard]] bool has_straggler() const {
    return straggler_rank >= 0 && straggler_factor > 1.0;
  }

  // The fate of attempt number `attempt` of message `serial` from
  // src -> dst.  Pure function of the keys and the seed.
  [[nodiscard]] Fate fate(int src, int dst, std::uint64_t serial,
                          int attempt) const;

  // Capped exponential backoff before retransmit number `attempt`
  // (attempt 1 is the first retransmit): base * 2^(attempt-1), capped.
  [[nodiscard]] Microseconds backoff(int attempt) const;
};

}  // namespace hyades::cluster
