// Wait-time attribution: the live analog of the paper's Figure 11.
//
// Folds a run's per-rank Tracers and Accounting snapshots into a
// per-rank breakdown of where virtual time went -- compute, halo
// exchange, global sums, barriers -- plus the two visibility buckets:
// communication hidden under computation (overlap credit, not part of
// the total) and the share of the comm waits caused by partner lateness
// (load imbalance) rather than wire time.
#pragma once

#include <ostream>
#include <vector>

#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "support/metrics.hpp"

namespace hyades::cluster {

struct RankBreakdown {
  int rank = 0;
  Microseconds compute_us = 0;    // Accounting::compute_us
  Microseconds exchange_us = 0;   // SpanCat::kExchange total
  Microseconds gsum_us = 0;       // SpanCat::kGsum total
  Microseconds barrier_us = 0;    // SpanCat::kBarrier total
  Microseconds overlap_us = 0;    // comm hidden under compute (credit)
  Microseconds imbalance_us = 0;  // of the comm waits: partner lateness
  Microseconds retrans_us = 0;    // of the comm waits: fault recovery
  Microseconds reroute_us = 0;    // of the comm waits: dead-link detours
  Microseconds restart_us = 0;    // restart-from-checkpoint (not in total)
  Microseconds migrate_us = 0;    // live tile adoption/handoff (not in total)
  std::int64_t degraded_sends = 0;  // transfers on a route-around path
  std::int64_t restarts = 0;        // epochs restarted into
  std::int64_t migrations = 0;      // dead tiles adopted live
  std::int64_t rebalances = 0;      // tiles handed back to a hot join
  std::int64_t downgrades = 0;      // recovery-ladder rungs fallen
  Microseconds comm_us = 0;       // Accounting::comm_us (cross-check)
  Microseconds total_us = 0;      // compute + comm

  // exchange + gsum + barrier; must agree with comm_us to within
  // accumulation rounding (the trace and the accounting see the same
  // intervals).
  [[nodiscard]] Microseconds traced_comm_us() const {
    return exchange_us + gsum_us + barrier_us;
  }
};

// The wait-attribution column whose time is fed by spans of this
// category, or nullptr for categories accounted through another path
// (kPhase/kSolver are structure inside the compute column, kOther is
// free-form).  This switch is the single place the span taxonomy meets
// the report table: hyades-lint's spancat-coverage rule parses the
// SpanCat enum and this function's cases, so adding a category without
// deciding its column is a lint failure (and a -Wswitch build break).
[[nodiscard]] const char* span_cat_column(SpanCat cat);

// Build the per-rank breakdown.  per_rank[r] may be null (rank skipped);
// acct must have at least per_rank.size() entries.
std::vector<RankBreakdown> wait_attribution(
    const std::vector<const Tracer*>& per_rank,
    const std::vector<Accounting>& acct);

// Print the breakdown as a paper-style table (one row per rank, a mean
// row at the bottom), times in milliseconds.  `divisor` scales every
// time column (pass the step count for per-step rollups; 1 for totals).
void print_wait_attribution(std::ostream& os,
                            const std::vector<RankBreakdown>& rows,
                            double divisor = 1.0);

// Flatten one rank's trace into a metrics registry: per-op time totals
// ("time_us.<op>"), span counts ("count.<op>"), and aggregated counter
// payloads ("bytes.<op>", "flops.<op>", ...).  Feed the per-rank
// registries to metrics::aggregate for cross-rank rollups.
metrics::Registry trace_metrics(const Tracer& tracer);

}  // namespace hyades::cluster
