// Per-rank operation tracing in virtual time.
//
// When a Tracer is attached to a RankContext, the comm primitives and
// the GCM time-stepper record (operation, begin, end) intervals on the
// rank's virtual clock.  Traces can be merged and written as a CSV
// timeline -- the tool one reaches for when asking where a step's 108 ms
// actually went (compute, exchange, global sums, or waiting for a
// load-imbalanced neighbour).
#pragma once

#include <string>
#include <vector>

#include "support/units.hpp"

namespace hyades::cluster {

struct TraceEvent {
  std::string op;        // e.g. "gsum", "exchange", "ps", "ds"
  Microseconds begin_us = 0;
  Microseconds end_us = 0;

  [[nodiscard]] Microseconds duration() const { return end_us - begin_us; }
};

class Tracer {
 public:
  void record(std::string op, Microseconds begin_us, Microseconds end_us) {
    events_.push_back({std::move(op), begin_us, end_us});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  // Total virtual time spent in operations whose name matches `op`.
  [[nodiscard]] Microseconds total(const std::string& op) const;

 private:
  std::vector<TraceEvent> events_;
};

// Write a merged timeline: one row per event, "rank,op,begin_us,end_us".
void write_trace_csv(const std::string& path,
                     const std::vector<const Tracer*>& per_rank);

}  // namespace hyades::cluster
