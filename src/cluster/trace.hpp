// Per-rank operation tracing in virtual time.
//
// When a Tracer is attached to a RankContext, the comm primitives and
// the GCM time-stepper record (operation, begin, end) intervals on the
// rank's virtual clock.  Traces can be merged and written as a CSV
// timeline or as Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing) -- the tool one reaches for when asking where a
// step's 108 ms actually went (compute, exchange, global sums, or
// waiting for a load-imbalanced neighbour).
//
// Recording is timing-invisible: Tracer methods only *read* the virtual
// clock, never advance it, so an instrumented run's virtual timeline is
// bit-identical to an uninstrumented one (regression-locked by
// tests/observability/observability_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/units.hpp"

namespace hyades::cluster {

// Typed span taxonomy.  The category drives aggregation (wait-time
// attribution, metrics rollups) and the "cat" field of the Chrome trace
// export; the op string stays free-form for finer labels.
enum class SpanCat : std::uint8_t {
  kPhase,     // ps, ps_interior, ps_rim, ds -- stepper phases
  kExchange,  // exchange, exchange_start, exchange_wait
  kGsum,      // gsum, gmax, gsum_start, gsum_wait, gmax_wait
  kBarrier,   // barrier
  kSolver,    // ds_cg_iter -- per-iteration CG spans
  kFault,     // retransmit, rollback -- fault-recovery intervals
  kNodeDown,  // node_down, restart -- hard-failure detection/recovery
  kOther,
};

[[nodiscard]] const char* span_cat_name(SpanCat cat);
// Infer the category of one of the library's well-known op names (used
// by the untyped record() overload kept for existing callers).
[[nodiscard]] SpanCat span_cat_of(const std::string& op);

// Optional per-span counter payload.  All counters are additive so they
// aggregate by plain summation across spans and ranks.
struct SpanCounters {
  std::int64_t bytes = 0;   // payload bytes moved by the operation
  double flops = 0;         // floating-point work attributed to the span
  int cg_iterations = 0;    // solver iterations inside the span
  Microseconds overlap_us = 0;  // comm time hidden under compute

  [[nodiscard]] bool any() const {
    return bytes != 0 || flops != 0 || cg_iterations != 0 || overlap_us != 0;
  }
};

struct TraceEvent {
  std::string op;        // e.g. "gsum", "exchange", "ps", "ds"
  SpanCat cat = SpanCat::kOther;
  Microseconds begin_us = 0;
  Microseconds end_us = 0;
  SpanCounters ctr;

  [[nodiscard]] Microseconds duration() const { return end_us - begin_us; }
};

class Tracer {
 public:
  void record(std::string op, Microseconds begin_us, Microseconds end_us) {
    const SpanCat cat = span_cat_of(op);
    events_.push_back({std::move(op), cat, begin_us, end_us, {}});
  }
  void record(std::string op, SpanCat cat, Microseconds begin_us,
              Microseconds end_us, const SpanCounters& ctr = {}) {
    events_.push_back({std::move(op), cat, begin_us, end_us, ctr});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  // Total virtual time spent in operations whose name matches `op`.
  [[nodiscard]] Microseconds total(const std::string& op) const;
  // Total virtual time spent in spans of the given category.
  [[nodiscard]] Microseconds total_cat(SpanCat cat) const;
  // Sum of counter payloads over spans whose name matches `op`.
  [[nodiscard]] SpanCounters counters(const std::string& op) const;

 private:
  std::vector<TraceEvent> events_;
};

// Write a merged timeline: one row per event, "rank,op,begin_us,end_us".
// Timestamps are emitted at full round-trip precision (max_digits10) --
// default ostream precision silently corrupts virtual times beyond ~1 s.
void write_trace_csv(const std::string& path,
                     const std::vector<const Tracer*>& per_rank);

// Write a Chrome trace-event JSON file (the "traceEvents" array format
// understood by Perfetto and chrome://tracing): one complete "X" event
// per span, pid = the rank's SMP, tid = the rank, ts/dur in virtual
// microseconds at full precision, counters in "args".  Null tracers are
// skipped (their pid/tid simply never appear).
void write_trace_json(const std::string& path,
                      const std::vector<const Tracer*>& per_rank,
                      int procs_per_smp = 1);

}  // namespace hyades::cluster
