// Functional transport between ranks: real data moves through in-memory
// mailboxes; virtual-time semantics ride on the `stamp_us` field that the
// comm library computes from the interconnect model.
//
// Matching is by (source, tag) with FIFO order per pair, mirroring
// Arctic's FIFO guarantee for messages on the same path.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/fault.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"
#include "support/units.hpp"

namespace hyades::cluster {

struct Message {
  int src = -1;
  int tag = 0;
  std::vector<double> data;
  Microseconds stamp_us = 0;  // sender-computed arrival time

  // Reliability protocol metadata (comm/reliable.hpp).  A raw send
  // leaves the defaults: serial 0, attempt 0, no CRC error, no recovery
  // cost -- so the fault-free path is unchanged.
  std::uint64_t serial = 0;     // per (src -> dst) transfer sequence number
  int attempt = 0;              // 0 = first transmission
  bool crc_error = false;       // the endpoint's 1-bit CRC status
  Microseconds recovery_us = 0;  // stamp delay caused by retransmits
  Microseconds reroute_us = 0;   // stamp delay from a dead-link route-around

  // Arrival time the transfer would have had without faults; callers
  // attributing wait time use this so recovery and reroute cost land in
  // their own buckets, not in imbalance.
  [[nodiscard]] Microseconds clean_stamp() const {
    return stamp_us - recovery_us - reroute_us;
  }
};

class MessageBus {
 public:
  explicit MessageBus(int nranks);

  void send(int to, Message m);

  // Block until a message from (from, tag) is available for `me`.
  // Throws std::runtime_error after `timeout_ms` of real time (deadlock
  // guard for tests).
  Message recv(int me, int from, int tag, int timeout_ms = 30000);

  // Non-blocking receive: pop the head of the (from, tag) queue if a
  // message has been posted, else return nullopt without waiting.  The
  // split-phase comm layer uses this to drain arrived strips during
  // exchange_test without blocking the rank.
  std::optional<Message> try_recv(int me, int from, int tag);

  // Non-blocking probe (for tests).
  [[nodiscard]] bool poll(int me, int from, int tag);

  // ---- NodeDown poison -------------------------------------------------
  // Declaring a verdict poisons the bus: every subsequent send/recv/
  // try_recv on any rank throws NodeDownError carrying the verdict, and
  // ranks blocked in recv wake immediately.  That turns one rank's
  // detection into a prompt collective abort of the epoch without any
  // real-time timeouts.  First verdict wins; later declarations are
  // ignored (every survivor derives the identical plan-pure verdict
  // anyway).
  void declare_down(const NodeDownVerdict& verdict);
  [[nodiscard]] bool down() const {
    return down_.load(std::memory_order_acquire);
  }
  [[nodiscard]] NodeDownVerdict down_verdict() const;
  // Clear the poison before relaunching the next epoch.  Queued mail
  // from the aborted epoch is left in place: the epoch number woven
  // into message tags (RankContext) makes it unmatchable dead letters.
  void reset_down();

 private:
  struct Mailbox {
    support::Mutex mu;
    support::CondVar cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues GUARDED_BY(mu);
  };
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<bool> down_{false};
  mutable support::Mutex verdict_mu_;
  NodeDownVerdict verdict_ GUARDED_BY(verdict_mu_);
};

}  // namespace hyades::cluster
