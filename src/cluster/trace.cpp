#include "cluster/trace.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hyades::cluster {

namespace {

// Serialize a double so that it round-trips exactly through text
// (shortest form up to max_digits10 significant digits).
std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

// Minimal JSON string escaping for op names (quotes, backslashes,
// control characters); the library's names are plain identifiers but the
// exporter must not emit malformed JSON for any input.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* span_cat_name(SpanCat cat) {
  switch (cat) {
    case SpanCat::kPhase: return "phase";
    case SpanCat::kExchange: return "exchange";
    case SpanCat::kGsum: return "gsum";
    case SpanCat::kBarrier: return "barrier";
    case SpanCat::kSolver: return "solver";
    case SpanCat::kFault: return "fault";
    case SpanCat::kNodeDown: return "node_down";
    case SpanCat::kOther: return "other";
  }
  return "other";
}

SpanCat span_cat_of(const std::string& op) {
  if (op == "ps" || op == "ds" || op == "ps_interior" || op == "ps_rim") {
    return SpanCat::kPhase;
  }
  if (op.rfind("exchange", 0) == 0) return SpanCat::kExchange;
  if (op.rfind("gsum", 0) == 0 || op.rfind("gmax", 0) == 0) {
    return SpanCat::kGsum;
  }
  if (op == "barrier") return SpanCat::kBarrier;
  if (op.rfind("ds_cg", 0) == 0) return SpanCat::kSolver;
  if (op.rfind("retransmit", 0) == 0 || op.rfind("rollback", 0) == 0) {
    return SpanCat::kFault;
  }
  if (op.rfind("node_down", 0) == 0 || op.rfind("restart", 0) == 0) {
    return SpanCat::kNodeDown;
  }
  return SpanCat::kOther;
}

Microseconds Tracer::total(const std::string& op) const {
  Microseconds sum = 0;
  for (const TraceEvent& e : events_) {
    if (e.op == op) sum += e.duration();
  }
  return sum;
}

Microseconds Tracer::total_cat(SpanCat cat) const {
  Microseconds sum = 0;
  for (const TraceEvent& e : events_) {
    if (e.cat == cat) sum += e.duration();
  }
  return sum;
}

SpanCounters Tracer::counters(const std::string& op) const {
  SpanCounters c;
  for (const TraceEvent& e : events_) {
    if (e.op != op) continue;
    c.bytes += e.ctr.bytes;
    c.flops += e.ctr.flops;
    c.cg_iterations += e.ctr.cg_iterations;
    c.overlap_us += e.ctr.overlap_us;
  }
  return c;
}

void write_trace_csv(const std::string& path,
                     const std::vector<const Tracer*>& per_rank) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_trace_csv: cannot open " + path);
  // Full round-trip precision: a 183-minute run sits at ~1.1e10 us, far
  // beyond the 6 significant digits of the default ostream precision.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "rank,op,begin_us,end_us\n";
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (per_rank[r] == nullptr) continue;
    for (const TraceEvent& e : per_rank[r]->events()) {
      os << r << ',' << e.op << ',' << e.begin_us << ',' << e.end_us << '\n';
    }
  }
}

void write_trace_json(const std::string& path,
                      const std::vector<const Tracer*>& per_rank,
                      int procs_per_smp) {
  if (procs_per_smp < 1) {
    throw std::invalid_argument("write_trace_json: procs_per_smp < 1");
  }
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_trace_json: cannot open " + path);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) os << ",\n";
    first = false;
    return os;
  };
  // Metadata: name each SMP (process) and rank (thread) for the UI.
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (per_rank[r] == nullptr) continue;
    const int pid = static_cast<int>(r) / procs_per_smp;
    sep() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
          << ",\"tid\":0,\"args\":{\"name\":\"smp" << pid << "\"}}";
    sep() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
          << ",\"tid\":" << r << ",\"args\":{\"name\":\"rank" << r << "\"}}";
  }
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (per_rank[r] == nullptr) continue;
    const int pid = static_cast<int>(r) / procs_per_smp;
    for (const TraceEvent& e : per_rank[r]->events()) {
      sep() << "{\"name\":\"" << json_escape(e.op) << "\",\"cat\":\""
            << span_cat_name(e.cat) << "\",\"ph\":\"X\",\"ts\":"
            << full_precision(e.begin_us)
            << ",\"dur\":" << full_precision(e.duration()) << ",\"pid\":"
            << pid << ",\"tid\":" << r;
      if (e.ctr.any()) {
        os << ",\"args\":{\"bytes\":" << e.ctr.bytes << ",\"flops\":"
           << full_precision(e.ctr.flops)
           << ",\"cg_iterations\":" << e.ctr.cg_iterations
           << ",\"overlap_us\":" << full_precision(e.ctr.overlap_us) << "}";
      }
      os << "}";
    }
  }
  os << "\n]}\n";
}

}  // namespace hyades::cluster
