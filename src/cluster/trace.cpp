#include "cluster/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace hyades::cluster {

Microseconds Tracer::total(const std::string& op) const {
  Microseconds sum = 0;
  for (const TraceEvent& e : events_) {
    if (e.op == op) sum += e.duration();
  }
  return sum;
}

void write_trace_csv(const std::string& path,
                     const std::vector<const Tracer*>& per_rank) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_trace_csv: cannot open " + path);
  os << "rank,op,begin_us,end_us\n";
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (per_rank[r] == nullptr) continue;
    for (const TraceEvent& e : per_rank[r]->events()) {
      os << r << ',' << e.op << ',' << e.begin_us << ',' << e.end_us << '\n';
    }
  }
}

}  // namespace hyades::cluster
