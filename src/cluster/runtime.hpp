// The Hyades machine: SMP nodes, ranks, and the threaded runtime.
//
// Mirrors the paper's configuration: a cluster of `smp_count` two-way
// SMPs, one StarT-X NIU per SMP, one MPI-like "rank" per processor.  A
// rank executes real C++ code on a std::thread; all *timing* is virtual
// (see VirtualClock).  Within an SMP, ranks coordinate through shared
// memory (modeled with a std::barrier plus shared slots, costed at the
// paper's ~1 us semaphore figures); across SMPs they communicate through
// the interconnect model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/message_bus.hpp"
#include "cluster/virtual_clock.hpp"
#include "net/interconnect.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace hyades::cluster {

struct MachineConfig {
  int smp_count = 8;
  int procs_per_smp = 2;
  const net::Interconnect* interconnect = nullptr;  // required

  // Shared-memory coordination cost per SMP barrier crossing.  A local
  // reduction uses four crossings, totalling the "about 1 usec" the paper
  // attributes to the shared-memory local sum (Section 4.2).
  Microseconds smp_barrier_us = 0.25;

  // Optional fault injection (cluster/fault.hpp).  Null (the default)
  // means the fault machinery is compiled out of every hot path: runs
  // are bit-identical to a build that predates the fault layer.  Not
  // owned; must outlive the Runtime.
  const struct FaultPlan* faults = nullptr;

  [[nodiscard]] int nranks() const { return smp_count * procs_per_smp; }
};

// Per-rank cost/usage accounting, all in virtual microseconds.
struct Accounting {
  Microseconds compute_us = 0;
  Microseconds comm_us = 0;
  // Communication time hidden under computation by split-phase
  // operations (the overlap rule t_finish = max(t_local, t_arrival)):
  // already covered by compute_us, so NOT part of total_us -- a separate
  // bucket that reports how much wire time the rank did not wait for.
  Microseconds overlap_us = 0;
  // Of comm_us, the portion spent jumping the clock forward to a late
  // partner's message timestamp (the Lamport advance_to sync): waiting
  // caused by load imbalance rather than by wire/transfer time.  A
  // subset of comm_us, tracked for wait-time attribution.
  Microseconds imbalance_us = 0;
  // Of comm_us, virtual time spent recovering from injected faults:
  // NAK round trips, retransmit backoff, and repeated transfers.  Like
  // imbalance_us, a subset attribution -- zero on fault-free runs.
  Microseconds retrans_us = 0;
  // Of comm_us, extra transfer latency paid because a dead inter-SMP
  // link forced traffic onto a longer route-around path.
  Microseconds reroute_us = 0;
  // Virtual time spent in collective restart-from-checkpoint after a
  // NodeDown verdict (relaunch + state reload).  Charged once per
  // restart per rank; NOT a subset of comm_us.
  Microseconds restart_us = 0;
  // Virtual time spent in elastic-membership recovery: adopting a dead
  // node's tile by live migration (checkpoint load on the adopter) or
  // handing a migrated tile back to a hot-joined replacement board.
  // Charged to the migrating/rebalancing rank only; NOT a subset of
  // comm_us.  Zero under epoch restart.
  Microseconds migrate_us = 0;
  double flops = 0;

  // Fault-recovery event counts (all zero on fault-free runs).
  std::int64_t retransmits = 0;   // sender-side retries performed
  std::int64_t crc_rejects = 0;   // receiver-side CRC-flagged attempts NAK'd
  std::int64_t drops_detected = 0;  // attempts recovered via timeout
  std::int64_t degraded_sends = 0;  // transfers that rode a route-around
  std::int64_t restarts = 0;        // epochs this rank restarted into
  std::int64_t migrations = 0;      // dead tiles this rank adopted live
  std::int64_t rebalances = 0;      // tiles handed back to a hot join
  // Rungs the degradation ladder fell during recoveries this rank
  // resumed into: 0 when every recovery landed on its first-choice
  // rung, +1 per failed rung attempt (migrate -> older cut -> epoch
  // restart).  Count-only; the time lands in restart_us/migrate_us.
  std::int64_t downgrades = 0;

  [[nodiscard]] Microseconds total_us() const { return compute_us + comm_us; }
  // Sustained MFlop/sec over the accounted interval.
  [[nodiscard]] double sustained_mflops() const {
    return total_us() > 0 ? flops / total_us() : 0.0;
  }
};

class Runtime;
class Membership;

// Tag stride between epochs: rank-level transport offsets every tag by
// epoch * stride, so messages from an aborted epoch can never match a
// restarted epoch's receives (they age out as dead letters).  All
// protocol tag spaces live far below this stride.
inline constexpr int kEpochTagStride = 1 << 16;

// A cyclic thread barrier that can be aborted: when a rank dies with an
// exception, abort() wakes every sibling blocked in arrive_and_wait()
// (they observe a runtime_error) instead of deadlocking the join.  It is
// reusable across Runtime::run() invocations via reset().
class AbortableBarrier {
 public:
  explicit AbortableBarrier(int count) : count_(count) {}

  void arrive_and_wait();
  void abort();
  void reset();

 private:
  support::Mutex mu_;
  support::CondVar cv_;
  const int count_;
  int waiting_ GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool aborted_ GUARDED_BY(mu_) = false;
};

// Shared state for one SMP: a barrier across its ranks plus publication
// slots used by the comm library for local reductions and aggregation.
struct SmpShared {
  explicit SmpShared(int procs)
      : barrier(procs), slots_d(static_cast<std::size_t>(procs), 0.0),
        slots_i(static_cast<std::size_t>(procs) * 2, 0),
        clock_slots(static_cast<std::size_t>(procs), 0.0) {}
  AbortableBarrier barrier;
  std::vector<double> slots_d;
  std::vector<std::int64_t> slots_i;  // two slots per local rank
  std::vector<Microseconds> clock_slots;
};

class RankContext {
 public:
  RankContext(Runtime& rt, int rank);
  ~RankContext();
  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const;
  [[nodiscard]] int smp() const;
  [[nodiscard]] int local_rank() const;
  [[nodiscard]] int procs_per_smp() const;
  [[nodiscard]] bool is_master() const { return local_rank() == 0; }
  [[nodiscard]] int smp_of(int rank) const;

  // ---- elastic placement ----------------------------------------------
  // Where a rank's tile is *hosted* right now, as opposed to smp_of()'s
  // structural home (rank / procs_per_smp).  After a live migration a
  // tile runs on a survivor SMP; after a hot join it returns home.  The
  // map is a per-rank *copy* (no shared mutable state): the driver seeds
  // the baseline via Runtime::set_host_map() between runs, and mid-run
  // changes (hot joins) are applied identically on every rank as a pure
  // function of (plan, step) at checkpoint cuts.  An empty map means
  // identity placement -- bit-identical to the pre-elastic machine.
  // Placement affects fabric cost classification (what counts as a
  // remote transfer), host-granular kill matching in Membership, and
  // the compute oversubscription factor; the structural butterfly /
  // shared-memory coordination math stays on smp_of().
  [[nodiscard]] int host_smp_of(int rank) const;
  [[nodiscard]] int host_smp() const { return host_smp_of(rank_); }
  // Move `rank`'s tile to be hosted on `smp` in THIS rank's local copy
  // of the placement map (materializing the identity map on first use)
  // and refresh the oversubscription factor.
  void rehome_rank(int rank, int smp);

  [[nodiscard]] const net::Interconnect& net() const;
  [[nodiscard]] const MachineConfig& config() const;

  VirtualClock& clock() { return clock_; }
  Accounting& accounting() { return acct_; }

  // Model `flops` floating-point operations executed at `mflops`
  // sustained MFlop/sec; advances the virtual clock and the accounting.
  void compute(double flops, double mflops);

  // Raw timestamped transport (the comm library computes stamps).
  void send_raw(int to, int tag, std::vector<double> data,
                Microseconds arrival_stamp);
  // Full-control variant for the reliability layer: src is filled in,
  // all other Message fields (tag, stamp, serial, attempt, crc_error,
  // recovery_us) are taken from `m` as given.
  void send_msg(int to, Message m);
  Message recv_raw(int from, int tag);
  // Non-blocking variant: returns the message if it has been posted,
  // nullopt otherwise.  Never advances the virtual clock -- arrival
  // *timing* is carried by stamp_us, so draining early keeps virtual
  // time deterministic regardless of real thread scheduling.
  std::optional<Message> try_recv_raw(int from, int tag);

  // SMP-local coordination: barrier over the SMP's ranks, with the
  // shared-memory cost applied and clocks synchronized to the local max.
  void smp_sync();
  // Publish a value / read a sibling's published value.  Only valid
  // between smp_sync() calls that order the accesses.
  void smp_publish(double v);
  void smp_publish_bytes(std::int64_t a, std::int64_t b);
  [[nodiscard]] double smp_peek(int local_rank) const;
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> smp_peek_bytes(
      int local_rank) const;

  // Track communication time: record the clock before a comm operation,
  // then charge the delta to comm accounting.
  void charge_comm(Microseconds start_us);
  // Credit communication time that elapsed under computation (split-phase
  // overlap) to the overlap_us bucket.
  void charge_overlap(Microseconds hidden_us);
  // Attribute part of a comm wait to partner lateness (load imbalance).
  void charge_imbalance(Microseconds wait_us);
  // Attribute fault-recovery cost (NAK + backoff + retransfer time).
  void charge_retrans(Microseconds recovery_us);
  // Attribute dead-link route-around latency (also counts the send).
  void charge_reroute(Microseconds reroute_us);
  // Attribute one collective restart-from-checkpoint (counts it too).
  void charge_restart(Microseconds restart_us);
  // Attribute one live tile adoption (counts it too).
  void charge_migrate(Microseconds migrate_us);
  // Attribute one tile handoff to a hot-joined board (counts it too).
  void charge_rebalance(Microseconds rebalance_us);
  // Record that the recovery this rank resumed into fell `count` rungs
  // down the degradation ladder (count-only; no clock effect).
  void note_downgrades(int count);

  // The machine's fault plan, or nullptr when fault injection is off.
  [[nodiscard]] const struct FaultPlan* faults() const;

  // The epoch this rank is executing (inherited from the Runtime at
  // construction).  Epoch e shifts every transport tag by
  // e * kEpochTagStride -- see kEpochTagStride.
  [[nodiscard]] int epoch() const { return epoch_; }

  // Membership/heartbeat service; non-null only when the fault plan
  // schedules node kills.  Created lazily on first use.
  [[nodiscard]] Membership* membership();

  // Publish a NodeDown verdict: poisons the machine's bus so every
  // rank's next transport call unwinds with NodeDownError.
  void declare_node_down(const NodeDownVerdict& verdict);

  // Optional tracing: when set, instrumented layers record operation
  // intervals here.  Not owned.
  void set_tracer(class Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] class Tracer* tracer() const { return tracer_; }

 private:
  void recompute_elastic_factor();

  Runtime& rt_;
  int rank_;
  int epoch_ = 0;
  VirtualClock clock_;
  Accounting acct_;
  class Tracer* tracer_ = nullptr;
  std::unique_ptr<Membership> membership_;
  // Local copy of the host placement map (empty = identity).
  std::vector<int> host_map_;
  // Compute slowdown when this rank's host SMP is oversubscribed (more
  // hosted ranks than processors after a migration); 1.0 otherwise.
  double elastic_factor_ = 1.0;
};

class Runtime {
 public:
  explicit Runtime(MachineConfig cfg);

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  MessageBus& bus() { return bus_; }
  SmpShared& smp_shared(int smp) { return *smps_[static_cast<std::size_t>(smp)]; }

  // Execute `body` on every rank (one std::thread each) and join.  Any
  // exception thrown by a rank is rethrown here after all threads stop.
  void run(const std::function<void(RankContext&)>& body);

  // Accounting snapshots captured at the end of the last run().
  [[nodiscard]] const std::vector<Accounting>& accounting() const {
    return acct_;
  }
  // Final virtual clocks of the last run.
  [[nodiscard]] const std::vector<Microseconds>& final_clocks() const {
    return clocks_;
  }
  [[nodiscard]] Microseconds max_clock() const;

  // Epoch for the next run(); ranks inherit it at construction.  The
  // resilient driver bumps it before each restart.
  void set_epoch(int epoch) { epoch_ = epoch; }
  [[nodiscard]] int epoch() const { return epoch_; }

  // Baseline host placement for the next run(); each rank copies it at
  // construction (see RankContext::host_smp_of).  Empty = identity.  The
  // elastic resilient driver evolves this between epochs as nodes die
  // and replacements join.
  void set_host_map(std::vector<int> map) { host_map_ = std::move(map); }
  [[nodiscard]] const std::vector<int>& host_map() const { return host_map_; }

 private:
  MachineConfig cfg_;
  int epoch_ = 0;
  std::vector<int> host_map_;
  MessageBus bus_;
  std::vector<std::unique_ptr<SmpShared>> smps_;
  std::vector<Accounting> acct_;
  std::vector<Microseconds> clocks_;
};

}  // namespace hyades::cluster
