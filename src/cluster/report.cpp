#include "cluster/report.hpp"

#include <stdexcept>

#include "support/table.hpp"

namespace hyades::cluster {

const char* span_cat_column(SpanCat cat) {
  // No default: a new SpanCat enumerator must add its case here (and a
  // matching column below, checked by hyades-lint spancat-coverage).
  switch (cat) {
    case SpanCat::kPhase:
      return nullptr;  // stepper structure inside "compute (ms)"
    case SpanCat::kExchange:
      return "exchange (ms)";
    case SpanCat::kGsum:
      return "gsum (ms)";
    case SpanCat::kBarrier:
      return "barrier (ms)";
    case SpanCat::kSolver:
      return nullptr;  // per-iteration detail inside the ds phase
    case SpanCat::kFault:
      return "retrans (ms)";  // cost carried in Accounting::retrans_us
    case SpanCat::kNodeDown:
      return "restart (ms)";  // cost carried in Accounting::restart_us
    case SpanCat::kOther:
      return nullptr;  // free-form ops, no dedicated column
  }
  return nullptr;
}

std::vector<RankBreakdown> wait_attribution(
    const std::vector<const Tracer*>& per_rank,
    const std::vector<Accounting>& acct) {
  if (acct.size() < per_rank.size()) {
    throw std::invalid_argument(
        "wait_attribution: accounting shorter than tracer list");
  }
  std::vector<RankBreakdown> rows;
  rows.reserve(per_rank.size());
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (per_rank[r] == nullptr) continue;
    const Tracer& t = *per_rank[r];
    const Accounting& a = acct[r];
    RankBreakdown b;
    b.rank = static_cast<int>(r);
    b.compute_us = a.compute_us;
    b.exchange_us = t.total_cat(SpanCat::kExchange);
    b.gsum_us = t.total_cat(SpanCat::kGsum);
    b.barrier_us = t.total_cat(SpanCat::kBarrier);
    b.overlap_us = a.overlap_us;
    b.imbalance_us = a.imbalance_us;
    b.retrans_us = a.retrans_us;
    b.reroute_us = a.reroute_us;
    b.restart_us = a.restart_us;
    b.migrate_us = a.migrate_us;
    b.degraded_sends = a.degraded_sends;
    b.restarts = a.restarts;
    b.migrations = a.migrations;
    b.rebalances = a.rebalances;
    b.downgrades = a.downgrades;
    b.comm_us = a.comm_us;
    b.total_us = a.total_us();
    rows.push_back(b);
  }
  return rows;
}

void print_wait_attribution(std::ostream& os,
                            const std::vector<RankBreakdown>& rows,
                            double divisor) {
  if (divisor == 0.0) divisor = 1.0;
  Table t({"rank", "compute (ms)", "exchange (ms)", "gsum (ms)",
           "barrier (ms)", "overlap-hidden (ms)", "imbalance-wait (ms)",
           "retrans (ms)", "reroute (ms)", "restart (ms)", "migrate (ms)",
           "degraded/restarts", "migr/rebal", "downgr", "total (ms)"});
  const auto ms = [divisor](Microseconds us) {
    return Table::fmt(us / divisor / 1000.0, 3);
  };
  const auto counts = [](std::int64_t a, std::int64_t b) {
    return Table::fmt_int(static_cast<int>(a)) + "/" +
           Table::fmt_int(static_cast<int>(b));
  };
  RankBreakdown sum;
  for (const RankBreakdown& b : rows) {
    t.add_row({Table::fmt_int(b.rank), ms(b.compute_us), ms(b.exchange_us),
               ms(b.gsum_us), ms(b.barrier_us), ms(b.overlap_us),
               ms(b.imbalance_us), ms(b.retrans_us), ms(b.reroute_us),
               ms(b.restart_us), ms(b.migrate_us),
               counts(b.degraded_sends, b.restarts),
               counts(b.migrations, b.rebalances),
               Table::fmt_int(static_cast<int>(b.downgrades)),
               ms(b.total_us)});
    sum.compute_us += b.compute_us;
    sum.exchange_us += b.exchange_us;
    sum.gsum_us += b.gsum_us;
    sum.barrier_us += b.barrier_us;
    sum.overlap_us += b.overlap_us;
    sum.imbalance_us += b.imbalance_us;
    sum.retrans_us += b.retrans_us;
    sum.reroute_us += b.reroute_us;
    sum.restart_us += b.restart_us;
    sum.migrate_us += b.migrate_us;
    sum.degraded_sends += b.degraded_sends;
    sum.restarts += b.restarts;
    sum.migrations += b.migrations;
    sum.rebalances += b.rebalances;
    sum.downgrades += b.downgrades;
    sum.total_us += b.total_us;
  }
  if (!rows.empty()) {
    const auto n = static_cast<double>(rows.size());
    const auto mean = [&](Microseconds us) {
      return Table::fmt(us / n / divisor / 1000.0, 3);
    };
    t.add_row({"mean", mean(sum.compute_us), mean(sum.exchange_us),
               mean(sum.gsum_us), mean(sum.barrier_us), mean(sum.overlap_us),
               mean(sum.imbalance_us), mean(sum.retrans_us),
               mean(sum.reroute_us), mean(sum.restart_us),
               mean(sum.migrate_us), counts(sum.degraded_sends, sum.restarts),
               counts(sum.migrations, sum.rebalances),
               Table::fmt_int(static_cast<int>(sum.downgrades)),
               mean(sum.total_us)});
  }
  t.print(os, "wait-time attribution (overlap-hidden is a credit, not part "
              "of total; imbalance-wait is a subset of comm)");
}

metrics::Registry trace_metrics(const Tracer& tracer) {
  metrics::Registry reg;
  for (const TraceEvent& e : tracer.events()) {
    reg.inc("time_us." + e.op, e.duration());
    reg.inc("count." + e.op, 1.0);
    if (e.ctr.bytes != 0) {
      reg.inc("bytes." + e.op, static_cast<double>(e.ctr.bytes));
    }
    if (e.ctr.flops != 0) reg.inc("flops." + e.op, e.ctr.flops);
    if (e.ctr.cg_iterations != 0) {
      reg.inc("cg_iterations." + e.op,
              static_cast<double>(e.ctr.cg_iterations));
    }
    if (e.ctr.overlap_us != 0) reg.inc("overlap_us." + e.op, e.ctr.overlap_us);
  }
  return reg;
}

}  // namespace hyades::cluster
