#include "net/topology.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace hyades::net {

double Topology::mean_hops() const {
  const int n = endpoints();
  if (n < 2) return 0.0;
  if (n <= kExactMeanEndpoints) {
    double sum = 0.0;
    long long pairs = 0;
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        sum += static_cast<double>(hops(src, dst));
        ++pairs;
      }
    }
    return sum / static_cast<double>(pairs);
  }
  // Deterministic seeded sample: same machine => same estimate.
  SplitMix64 rng(0x70417273ull);
  const int samples = 4096;
  double sum = 0.0;
  int used = 0;
  for (int i = 0; i < samples; ++i) {
    const int src =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int dst =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (src == dst) continue;
    sum += static_cast<double>(hops(src, dst));
    ++used;
  }
  return used > 0 ? sum / static_cast<double>(used) : 0.0;
}

// ---- fat tree ----------------------------------------------------------

FatTreeTopology::FatTreeTopology(int endpoints, arctic::FatTreeShape shape,
                                 arctic::LinkConfig link)
    : endpoints_(endpoints), shape_(shape), link_(link) {
  shape_.check();
  if (endpoints < 1 || endpoints > shape_.max_endpoints()) {
    throw std::invalid_argument("FatTreeTopology: endpoints do not fit shape");
  }
}

std::string FatTreeTopology::name() const {
  return "fat-tree r=" + std::to_string(shape_.radix) +
         " L=" + std::to_string(shape_.levels);
}

int FatTreeTopology::hops(int src, int dst) const {
  return arctic::router_hops(src, dst, shape_);
}

int FatTreeTopology::diameter_hops() const {
  // Climb to the root level and back down.
  return 2 * (shape_.levels - 1) + 1;
}

Microseconds FatTreeTopology::per_hop_latency_us() const {
  // One cut-through stage: forward the header chunk over the link, then
  // the router stage latency.
  return static_cast<double>(link_.forward_bytes) /
             link_.bandwidth_mbytes_per_sec +
         link_.prop_delay_us + link_.stage_latency_us;
}

double FatTreeTopology::bisection_bandwidth_mbytes() const {
  // Full fat tree: both directions of every endpoint's share of the root
  // cut (Section 2.2's 2 * N * link rate).
  return 2.0 * static_cast<double>(endpoints_) *
         link_.bandwidth_mbytes_per_sec;
}

// ---- torus -------------------------------------------------------------

int TorusShape::ring_distance(int a, int b, int n) {
  const int d = a > b ? a - b : b - a;
  return std::min(d, n - d);
}

int TorusShape::distance(int a, int b) const {
  return ring_distance(x_of(a), x_of(b), nx) +
         ring_distance(y_of(a), y_of(b), ny) +
         ring_distance(z_of(a), z_of(b), nz);
}

void TorusShape::check() const {
  if (nx < 1 || ny < 1 || nz < 1) {
    throw std::invalid_argument("TorusShape: empty dimension");
  }
}

TorusShape near_cubic_torus(int nodes) {
  if (nodes < 1) throw std::invalid_argument("near_cubic_torus: nodes < 1");
  const auto largest_divisor_le = [](int n, int cap) {
    for (int d = cap; d > 1; --d) {
      if (n % d == 0) return d;
    }
    return 1;
  };
  int cbrt_cap = 1;
  while ((cbrt_cap + 1) * (cbrt_cap + 1) * (cbrt_cap + 1) <= nodes) ++cbrt_cap;
  const int nz = largest_divisor_le(nodes, cbrt_cap);
  const int rest = nodes / nz;
  int sqrt_cap = 1;
  while ((sqrt_cap + 1) * (sqrt_cap + 1) <= rest) ++sqrt_cap;
  const int ny = std::max(largest_divisor_le(rest, sqrt_cap), nz);
  TorusShape s{rest / ny, ny, nz};
  if (s.nx < s.ny) std::swap(s.nx, s.ny);
  s.check();
  return s;
}

TorusTopology::TorusTopology(TorusShape shape, Microseconds hop_latency_us,
                             double link_mbytes)
    : shape_(shape), hop_latency_us_(hop_latency_us),
      link_mbytes_(link_mbytes) {
  shape_.check();
}

std::string TorusTopology::name() const {
  return "torus " + std::to_string(shape_.nx) + "x" +
         std::to_string(shape_.ny) + "x" + std::to_string(shape_.nz);
}

int TorusTopology::diameter_hops() const {
  return shape_.nx / 2 + shape_.ny / 2 + shape_.nz / 2;
}

double TorusTopology::bisection_bandwidth_mbytes() const {
  // Cut the longest dimension in half: every ring along it contributes
  // its two wrap links to the cut, each carrying both directions.
  const int longest = std::max({shape_.nx, shape_.ny, shape_.nz});
  const int rings = shape_.nodes() / longest;
  return 4.0 * static_cast<double>(rings) * link_mbytes_;
}

// ---- star --------------------------------------------------------------

StarTopology::StarTopology(std::string name, int endpoints,
                           Microseconds switch_latency_us, double link_mbytes)
    : name_(std::move(name)), endpoints_(endpoints),
      switch_latency_us_(switch_latency_us), link_mbytes_(link_mbytes) {
  if (endpoints < 1) {
    throw std::invalid_argument("StarTopology: endpoints < 1");
  }
}

double StarTopology::bisection_bandwidth_mbytes() const {
  // Every endpoint's full-duplex switch port can cross the cut.
  return static_cast<double>(endpoints_) * link_mbytes_;
}

}  // namespace hyades::net
