#include "net/torus.hpp"

namespace hyades::net {

TorusModel::TorusModel(TorusShape shape)
    : topo_(shape, kTorusHopLatencyUs, kTorusLinkMBs) {}

LogPParams TorusModel::small_message(int payload_bytes) const {
  LogPParams p;
  p.os = kTorusSendOverheadUs;
  p.orr = kTorusRecvOverheadUs;
  // Worst-case path across the machine, plus wire time for the payload.
  p.L = static_cast<double>(topo_.diameter_hops()) * kTorusHopLatencyUs +
        static_cast<double>(payload_bytes) / kTorusLinkMBs;
  return p;
}

Microseconds TorusModel::transfer_time(std::int64_t bytes) const {
  return kTorusTransferOverheadUs +
         static_cast<double>(bytes) / kTorusEffectiveMBs;
}

int TorusModel::hops_for_round(int round) const {
  const int nodes = topo_.endpoints();
  const long long partner = 1ll << round;
  if (partner >= nodes) return topo_.diameter_hops();
  return topo_.shape().distance(0, static_cast<int>(partner));
}

Microseconds TorusModel::gsum_round_time(int round) const {
  // Store-and-poll butterfly round like the other models, but the
  // partner distance grows with the round: early rounds are ring
  // neighbors, late rounds cross the machine.
  const Microseconds wire =
      static_cast<double>(hops_for_round(round)) * kTorusHopLatencyUs;
  const Microseconds payload = 8.0 / kTorusLinkMBs;
  return kTorusSendOverheadUs + wire + payload + kTorusRecvOverheadUs;
}

}  // namespace hyades::net
