// Structural view of an interconnect: how many endpoints, what a route
// between two of them costs in switching hops, and what the wires are
// worth.  The timing models (Interconnect) answer "how long does this
// primitive take"; a Topology answers "what does the network look
// like", which is what the topology-at-scale study sweeps over.
//
// Implementations: the Arctic fat tree (any FatTreeShape), the switched
// Ethernet star, and the 3-D torus of the CP-PACS/PACS-CS family.
#pragma once

#include <string>

#include "arctic/route.hpp"
#include "arctic/router.hpp"
#include "support/units.hpp"

namespace hyades::net {

// The paper's testbed size: 16 SMP endpoints on the Arctic fabric.
inline constexpr int kPaperEndpoints = 16;
// Machines up to this size get exact all-pairs mean_hops(); larger ones
// a deterministic seeded sample.
inline constexpr int kExactMeanEndpoints = 512;

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int endpoints() const = 0;

  // Route cost: switching elements traversed from src to dst (router
  // stages in the fat tree, inter-node links in the torus, switch
  // crossings in the star).
  [[nodiscard]] virtual int hops(int src, int dst) const = 0;
  // Largest hops() over all endpoint pairs (closed form per topology).
  [[nodiscard]] virtual int diameter_hops() const = 0;

  [[nodiscard]] virtual Microseconds per_hop_latency_us() const = 0;
  [[nodiscard]] virtual double link_bandwidth_mbytes() const = 0;
  // Aggregate bandwidth across the worst-case even bisection of the
  // machine, both directions.
  [[nodiscard]] virtual double bisection_bandwidth_mbytes() const = 0;

  // Mean hops() over endpoint pairs: exact all-pairs average for small
  // machines, a deterministic seeded sample above kExactMeanEndpoints.
  [[nodiscard]] double mean_hops() const;
};

// ---- Arctic fat tree ---------------------------------------------------

class FatTreeTopology final : public Topology {
 public:
  FatTreeTopology(int endpoints, arctic::FatTreeShape shape,
                  arctic::LinkConfig link = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int endpoints() const override { return endpoints_; }
  [[nodiscard]] int hops(int src, int dst) const override;
  [[nodiscard]] int diameter_hops() const override;
  [[nodiscard]] Microseconds per_hop_latency_us() const override;
  [[nodiscard]] double link_bandwidth_mbytes() const override {
    return link_.bandwidth_mbytes_per_sec;
  }
  [[nodiscard]] double bisection_bandwidth_mbytes() const override;
  [[nodiscard]] const arctic::FatTreeShape& shape() const { return shape_; }

 private:
  int endpoints_;
  arctic::FatTreeShape shape_;
  arctic::LinkConfig link_;
};

// ---- 3-D torus (CP-PACS / PACS-CS family) ------------------------------

struct TorusShape {
  int nx = 1;
  int ny = 1;
  int nz = 1;

  [[nodiscard]] int nodes() const { return nx * ny * nz; }
  // Lexicographic rank embedding: rank = x + nx*(y + ny*z).
  [[nodiscard]] int x_of(int rank) const { return rank % nx; }
  [[nodiscard]] int y_of(int rank) const { return (rank / nx) % ny; }
  [[nodiscard]] int z_of(int rank) const { return rank / (nx * ny); }
  // Minimal wrap distance along one dimension of extent n.
  static int ring_distance(int a, int b, int n);
  // Dimension-ordered minimal path length (links) between two ranks.
  [[nodiscard]] int distance(int a, int b) const;
  void check() const;  // throws std::invalid_argument on empty dims
};

// Factor `nodes` into the most nearly cubic nx >= ny >= nz (exact
// product; deterministic).
TorusShape near_cubic_torus(int nodes);

class TorusTopology final : public Topology {
 public:
  TorusTopology(TorusShape shape, Microseconds hop_latency_us,
                double link_mbytes);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int endpoints() const override { return shape_.nodes(); }
  [[nodiscard]] int hops(int src, int dst) const override {
    return shape_.distance(src, dst);
  }
  [[nodiscard]] int diameter_hops() const override;
  [[nodiscard]] Microseconds per_hop_latency_us() const override {
    return hop_latency_us_;
  }
  [[nodiscard]] double link_bandwidth_mbytes() const override {
    return link_mbytes_;
  }
  [[nodiscard]] double bisection_bandwidth_mbytes() const override;
  [[nodiscard]] const TorusShape& shape() const { return shape_; }

 private:
  TorusShape shape_;
  Microseconds hop_latency_us_;
  double link_mbytes_;
};

// ---- switched star (Ethernet-class) ------------------------------------

class StarTopology final : public Topology {
 public:
  StarTopology(std::string name, int endpoints, Microseconds switch_latency_us,
               double link_mbytes);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int endpoints() const override { return endpoints_; }
  // Every pair crosses the one switch.
  [[nodiscard]] int hops(int, int) const override { return 1; }
  [[nodiscard]] int diameter_hops() const override { return 1; }
  [[nodiscard]] Microseconds per_hop_latency_us() const override {
    return switch_latency_us_;
  }
  [[nodiscard]] double link_bandwidth_mbytes() const override {
    return link_mbytes_;
  }
  [[nodiscard]] double bisection_bandwidth_mbytes() const override;

 private:
  std::string name_;
  int endpoints_;
  Microseconds switch_latency_us_;
  double link_mbytes_;
};

}  // namespace hyades::net
