// Commodity-interconnect timing models: MPI over switched Fast Ethernet
// and over Gigabit Ethernet, the two LAN alternatives of the paper's
// Figure 12.
//
// The paper reports only the *achieved primitive costs* (tgsum, texchxy,
// texchxyz) on these stacks, not the stack internals, so these models are
// calibrated so the comm library's measured primitives land on the
// paper's values: a fixed per-transfer software overhead (MPI + TCP/IP +
// interrupt costs), an effective streaming bandwidth (well under wire
// rate for 1999-era stacks; Fast Ethernet additionally suffers
// congestion when all nodes burst simultaneously), and a small-message
// half-RTT that sets the global-sum round cost.
#pragma once

#include "net/interconnect.hpp"
#include "net/topology.hpp"

namespace hyades::net {

struct EthernetConfig {
  std::string name;
  Microseconds send_overhead_us;    // per-message CPU cost, sender
  Microseconds recv_overhead_us;    // per-message CPU cost, receiver
  Microseconds wire_latency_us;     // one-way latency incl. interrupts
  Microseconds transfer_overhead_us;  // fixed cost of a bulk MPI transfer
  double bandwidth_mbytes;          // effective streaming bandwidth
  int endpoints = kPaperEndpoints;  // ports on the one switch
};

class EthernetModel final : public Interconnect {
 public:
  explicit EthernetModel(EthernetConfig cfg)
      : cfg_(std::move(cfg)),
        topo_(cfg_.name, cfg_.endpoints, cfg_.wire_latency_us,
              cfg_.bandwidth_mbytes) {}

  [[nodiscard]] std::string name() const override { return cfg_.name; }
  [[nodiscard]] LogPParams small_message(int payload_bytes) const override;
  [[nodiscard]] Microseconds transfer_time(std::int64_t bytes) const override;
  [[nodiscard]] Microseconds transfer_overhead() const override {
    return cfg_.transfer_overhead_us;
  }
  [[nodiscard]] double bandwidth_mbytes() const override {
    return cfg_.bandwidth_mbytes;
  }
  [[nodiscard]] Microseconds gsum_round_time(int round) const override;
  [[nodiscard]] const Topology* topology() const override { return &topo_; }

 private:
  EthernetConfig cfg_;
  StarTopology topo_;
};

// Factory presets calibrated against Figure 12 (see DESIGN.md section 2).
EthernetModel fast_ethernet();
EthernetModel gigabit_ethernet();

// HPVM over Myrinet (Section 6's general-purpose comparison cluster):
// same class of link hardware as Arctic, but a general-purpose software
// suite -- calibrated to the paper's two data points (a 16-way barrier
// of >50 us, i.e. >2.5x Hyades's, and ~42 MB/s for 1-KByte transfers,
// 25% below the exchange primitive).
EthernetModel hpvm_myrinet();

}  // namespace hyades::net
