#include "net/ethernet.hpp"

namespace hyades::net {

LogPParams EthernetModel::small_message(int payload_bytes) const {
  LogPParams p;
  p.os = cfg_.send_overhead_us;
  p.orr = cfg_.recv_overhead_us;
  // Wire time is negligible against the stack latency for small messages
  // but is included for completeness.
  p.L = cfg_.wire_latency_us +
        static_cast<double>(payload_bytes) / cfg_.bandwidth_mbytes;
  return p;
}

Microseconds EthernetModel::transfer_time(std::int64_t bytes) const {
  return cfg_.transfer_overhead_us +
         static_cast<double>(bytes) / cfg_.bandwidth_mbytes;
}

Microseconds EthernetModel::gsum_round_time(int) const {
  // MPI small-message half-RTT per butterfly round; hop distance in the
  // switch is immaterial next to the software stack.
  return small_message(8).half_rtt();
}

EthernetModel fast_ethernet() {
  EthernetConfig cfg;
  cfg.name = "Fast Ethernet";
  cfg.send_overhead_us = 50.0;
  cfg.recv_overhead_us = 50.0;
  cfg.wire_latency_us = 206.0;  // half-RTT ~313 us -> tgsum 942 us over 3 rounds
  cfg.transfer_overhead_us = 1100.0;
  cfg.bandwidth_mbytes = 1.25;  // congested shared segment under bursts
  return EthernetModel(cfg);
}

EthernetModel hpvm_myrinet() {
  EthernetConfig cfg;
  cfg.name = "HPVM/Myrinet";
  // A 16-way barrier is ~4 butterfly rounds + local combine; >50 us
  // total puts the per-round half-RTT near 12.5 us.
  cfg.send_overhead_us = 2.5;
  cfg.recv_overhead_us = 4.0;
  cfg.wire_latency_us = 6.0;
  // 42 MB/s at 1 KByte with a wire-speed-class link implies ~16 us of
  // fixed per-transfer software overhead: 1024/42 - 1024/125 ~ 16.
  cfg.transfer_overhead_us = 16.2;
  cfg.bandwidth_mbytes = 125.0;
  return EthernetModel(cfg);
}

EthernetModel gigabit_ethernet() {
  EthernetConfig cfg;
  cfg.name = "Gigabit Ethernet";
  cfg.send_overhead_us = 30.0;
  cfg.recv_overhead_us = 30.0;
  // Early GE NICs had *higher* small-message latency than FE (the paper's
  // GE tgsum of 1193 us exceeds FE's 942 us).
  cfg.wire_latency_us = 336.0;  // half-RTT ~396 us -> tgsum ~1190 us
  cfg.transfer_overhead_us = 210.0;
  cfg.bandwidth_mbytes = 28.0;
  return EthernetModel(cfg);
}

}  // namespace hyades::net
