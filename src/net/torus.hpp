// Timing model of a 3-D torus / hyper-crossbar interconnect in the
// CP-PACS / PACS-CS family (PAPERS.md): dedicated MPP-class links with
// lean RDMA-style software, where -- unlike the one-stage-deep Arctic
// tree or the Ethernet star -- the hop count between partners is what
// scales the latency.  Usable both by the closed-form perf model and by
// the DES-backed cluster runtime (it is a complete Interconnect).
#pragma once

#include "net/interconnect.hpp"
#include "net/topology.hpp"

namespace hyades::net {

// CP-PACS-class link and software constants (named so the shape code
// stays free of magic numbers; see DESIGN.md "Topology generalization").
inline constexpr double kTorusLinkMBs = 300.0;       // per link per direction
inline constexpr double kTorusHopLatencyUs = 0.2;    // per-hop switch+wire
inline constexpr double kTorusSendOverheadUs = 1.5;  // RDMA-class CPU cost
inline constexpr double kTorusRecvOverheadUs = 1.5;
inline constexpr double kTorusTransferOverheadUs = 8.0;  // bulk setup
// Effective streaming bandwidth: scatter/gather and packetization keep
// the achieved rate below the raw link.
inline constexpr double kTorusEffectiveMBs = 260.0;

class TorusModel final : public Interconnect {
 public:
  explicit TorusModel(TorusShape shape);
  // Most-cubic torus covering `nodes` endpoints.
  static TorusModel for_nodes(int nodes) {
    return TorusModel(near_cubic_torus(nodes));
  }

  [[nodiscard]] std::string name() const override { return topo_.name(); }
  [[nodiscard]] LogPParams small_message(int payload_bytes) const override;
  [[nodiscard]] Microseconds transfer_time(std::int64_t bytes) const override;
  [[nodiscard]] Microseconds transfer_overhead() const override {
    return kTorusTransferOverheadUs;
  }
  [[nodiscard]] double bandwidth_mbytes() const override {
    return kTorusEffectiveMBs;
  }
  [[nodiscard]] Microseconds gsum_round_time(int round) const override;
  [[nodiscard]] const Topology* topology() const override { return &topo_; }

  // Links crossed between butterfly partners of round `round` (ranks
  // differing in bit `round`, under the lexicographic rank embedding).
  [[nodiscard]] int hops_for_round(int round) const;

 private:
  TorusTopology topo_;
};

}  // namespace hyades::net
