// Timing model of the Arctic Switch Fabric + StarT-X NIU stack, derived
// from the same constants as the detailed DES (startx/config.hpp,
// arctic/router.hpp).  tests/net verify this closed-form model against
// the packet-level simulator.
#pragma once

#include "arctic/router.hpp"
#include "net/interconnect.hpp"
#include "net/topology.hpp"
#include "startx/config.hpp"

namespace hyades::net {

class ArcticModel final : public Interconnect {
 public:
  explicit ArcticModel(int endpoints = kPaperEndpoints,
                       startx::StartXConfig niu = {},
                       arctic::LinkConfig link = {},
                       int radix = arctic::kRadix);

  // "Arctic" at the paper's 16-endpoint radix-4 build; the structural
  // fat-tree name ("fat-tree r=R L=N") at any other shape, so sweep
  // tables distinguish the parameterized builds.
  [[nodiscard]] std::string name() const override;

  // One-way latency of a message whose route climbs `up_levels` stages
  // (0 = same leaf router).  Exposed for the global-sum round model and
  // for cross-checking against the DES.
  [[nodiscard]] Microseconds path_latency(int up_levels) const;

  // Up levels needed between butterfly partners that differ in bit
  // `round` of their node id (a radix-r leaf holds r consecutive ids;
  // at the paper's radix 4 this is round / 2).
  [[nodiscard]] int up_levels_for_round(int round) const;

  [[nodiscard]] LogPParams small_message(int payload_bytes) const override;
  [[nodiscard]] Microseconds transfer_time(std::int64_t bytes) const override;
  [[nodiscard]] Microseconds exchange_transfer_time(
      std::int64_t bytes) const override;
  [[nodiscard]] Microseconds transfer_overhead() const override;
  [[nodiscard]] double bandwidth_mbytes() const override {
    return niu_.vi_payload_mbytes_per_sec;
  }
  [[nodiscard]] Microseconds gsum_round_time(int round) const override;

  // Exchange-path effective bandwidth: copy-in + DMA + copy-out without
  // the standalone benchmark's overlap (see Interconnect doc).
  [[nodiscard]] double exchange_bandwidth_mbytes() const;

  // CPU cost (loop + FP add) charged per global-sum round; calibrated so
  // the measured 2/4/8/16-way latencies of Section 4.2 are reproduced.
  [[nodiscard]] Microseconds gsum_cpu_add() const { return gsum_cpu_add_us_; }

  [[nodiscard]] const Topology* topology() const override { return &topo_; }
  [[nodiscard]] const arctic::FatTreeShape& shape() const {
    return topo_.shape();
  }

 private:
  int endpoints_;
  startx::StartXConfig niu_;
  arctic::LinkConfig link_;
  FatTreeTopology topo_;
  Microseconds gsum_cpu_add_us_ = 0.93;
};

}  // namespace hyades::net
