// Interconnect timing models.
//
// The cluster runtime and the comm library are written against this
// abstraction so the same GCM run can be costed on the Arctic Switch
// Fabric, Fast Ethernet, or Gigabit Ethernet -- the comparison at the
// heart of the paper's Figure 12.
//
// A model answers three questions:
//   * what does a small message cost (LogP: Os, Or, L)?           -- used
//     by the global-sum butterfly and transfer negotiation;
//   * what does a bulk one-directional transfer of B bytes cost?  -- used
//     by the exchange primitive;
//   * what does one butterfly round of a global sum cost?
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "support/units.hpp"

namespace hyades::net {

class Topology;

struct LogPParams {
  Microseconds os = 0;   // send overhead
  Microseconds orr = 0;  // receive overhead ("or" is a C++ keyword)
  Microseconds L = 0;    // one-way network latency

  [[nodiscard]] Microseconds half_rtt() const { return os + L + orr; }
};

class Interconnect {
 public:
  virtual ~Interconnect() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // LogP characteristics of a small message with `payload_bytes` payload.
  [[nodiscard]] virtual LogPParams small_message(int payload_bytes) const = 0;

  // Bulk transfer of `bytes` of user data from send initiation to receive
  // completion, using the interconnect's optimized bulk path (StarT-X VI
  // mode / MPI on Ethernet).
  [[nodiscard]] virtual Microseconds transfer_time(std::int64_t bytes) const = 0;

  // Same, but as achieved *inside the exchange primitive*, where the
  // two-transfers-sequential rule and per-tile scatter/gather prevent the
  // standalone benchmark's full copy/DMA overlap.  Defaults to the bulk
  // path.
  [[nodiscard]] virtual Microseconds exchange_transfer_time(
      std::int64_t bytes) const {
    return transfer_time(bytes);
  }

  // Fixed per-transfer overhead and streaming bandwidth, for reporting.
  [[nodiscard]] virtual Microseconds transfer_overhead() const = 0;
  [[nodiscard]] virtual double bandwidth_mbytes() const = 0;

  // Cost of butterfly round `round` (partner node ids differ in bit
  // `round`) of a global sum, including both CPU overheads and the
  // floating-point combine.
  [[nodiscard]] virtual Microseconds gsum_round_time(int round) const = 0;

  // Cost of combining the local processors' values inside one SMP (the
  // shared-memory pre/post phase; "about 1 usec" in the paper).
  [[nodiscard]] virtual Microseconds smp_local_sum_time() const { return 1.0; }

  // Relative bandwidth available to a slave processor routed through the
  // SMP's communication master (Section 4.1: "about 30% lower").
  [[nodiscard]] virtual double slave_bandwidth_factor() const { return 0.7; }

  // Structural view of the network (endpoints, hop costs, bisection),
  // when the model has one; see net/topology.hpp.
  [[nodiscard]] virtual const Topology* topology() const { return nullptr; }
};

}  // namespace hyades::net
