#include "net/logp.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "arctic/fabric.hpp"
#include "sim/scheduler.hpp"
#include "startx/niu.hpp"

namespace hyades::net {

namespace {
// Cross-tree node pair on an `endpoints`-node machine: node 0 and the
// last node differ in their top base-4 digit, so the route climbs to the
// root -- the common case the paper characterizes.
constexpr int kNodeA = 0;
}  // namespace

PioLogPResult measure_pio_logp(int payload_bytes, int endpoints,
                               int iterations) {
  if (payload_bytes < 8 || payload_bytes % 4 != 0 || payload_bytes > 88) {
    throw std::invalid_argument("measure_pio_logp: payload must be 8..88 B");
  }
  sim::Scheduler sched;
  arctic::Fabric fabric(sched, endpoints);
  auto nius = startx::attach_all(sched, fabric);
  startx::StartXNiu& a = *nius[kNodeA];
  startx::StartXNiu& b = *nius[static_cast<std::size_t>(endpoints - 1)];

  const auto words = static_cast<std::size_t>(payload_bytes / 4);
  const Microseconds os = a.pio_send_overhead(payload_bytes);
  const Microseconds orr = a.pio_recv_overhead(payload_bytes);

  struct State {
    double total_rtt_us = 0;
    int completed = 0;
    sim::SimTime iter_start = 0;
  };
  auto st = std::make_shared<State>();

  // Responder: consume (receive overhead), then bounce the message back.
  b.set_pio_notify([&, st](const startx::PioMessage& m) {
    (void)m;
    const sim::SimTime consumed = sched.now() + sim::from_us(orr);
    std::vector<std::uint32_t> payload(words, 0xB0B0B0B0u);
    b.pio_inject_at(consumed + sim::from_us(os), kNodeA, 1,
                    std::move(payload));
    // Drain the queue so depth stays bounded.
    while (b.pio_available()) (void)b.pio_pop();
  });

  // Originator: on reply, complete the iteration and start the next.
  a.set_pio_notify([&, st, iterations](const startx::PioMessage& m) {
    (void)m;
    const sim::SimTime consumed = sched.now() + sim::from_us(orr);
    st->total_rtt_us += sim::to_us(consumed - st->iter_start);
    ++st->completed;
    while (a.pio_available()) (void)a.pio_pop();
    if (st->completed < iterations) {
      st->iter_start = consumed;
      std::vector<std::uint32_t> payload(words, 0xA0A0A0A0u);
      a.pio_inject_at(consumed + sim::from_us(os), fabric.endpoints() - 1, 1,
                      std::move(payload));
    }
  });

  // Kick off the first iteration.
  st->iter_start = 0;
  {
    std::vector<std::uint32_t> payload(words, 0xA0A0A0A0u);
    a.pio_inject_at(sim::from_us(os), endpoints - 1, 1, std::move(payload));
  }
  sched.run();

  PioLogPResult r;
  r.payload_bytes = payload_bytes;
  r.os = os;
  r.orr = orr;
  r.half_rtt = st->completed > 0
                   ? st->total_rtt_us / (2.0 * st->completed)
                   : 0.0;
  r.L = r.half_rtt - os - orr;
  return r;
}

ViTransferResult measure_vi_transfer(std::int64_t bytes, int endpoints) {
  if (bytes < 4) {
    throw std::invalid_argument("measure_vi_transfer: bytes must be >= 4");
  }
  sim::Scheduler sched;
  arctic::Fabric fabric(sched, endpoints);
  auto nius = startx::attach_all(sched, fabric);
  startx::StartXNiu& tx = *nius[kNodeA];
  startx::StartXNiu& rx = *nius[static_cast<std::size_t>(endpoints - 1)];
  const startx::StartXConfig& cfg = tx.config();

  const Microseconds os = tx.pio_send_overhead(8);
  const Microseconds orr = tx.pio_recv_overhead(8);
  const Microseconds doorbell = 2.0 * cfg.mmap_write_us;
  const std::int64_t chunk =
      std::min<std::int64_t>(bytes, cfg.vi_chunk_bytes);
  const Microseconds first_copy = tx.copy_time(chunk);
  const Microseconds last_copy = rx.copy_time(chunk);

  auto done_at = std::make_shared<sim::SimTime>(-1);

  // Receiver side: on the transfer request, post the VI buffer and ack.
  rx.set_pio_notify([&](const startx::PioMessage& m) {
    if (m.tag != 7) return;
    const sim::SimTime consumed = sched.now() + sim::from_us(orr);
    rx.vi_expect(3, bytes, [&, last_copy](sim::SimTime t_last) {
      // The receiver copies the final chunk out of the VI region.
      *done_at = t_last + sim::from_us(last_copy);
    });
    rx.pio_inject_at(consumed + sim::from_us(os), kNodeA, 8, {0u, 0u});
    while (rx.pio_available()) (void)rx.pio_pop();
  });

  // Sender side: on the ack, ring the doorbell, copy the first chunk into
  // the VI region, and start the paced stream.
  tx.set_pio_notify([&](const startx::PioMessage& m) {
    if (m.tag != 8) return;
    const sim::SimTime consumed = sched.now() + sim::from_us(orr);
    const sim::SimTime start =
        consumed + sim::from_us(doorbell + first_copy);
    tx.vi_send_at(start, endpoints - 1, 3, bytes);
    while (tx.pio_available()) (void)tx.pio_pop();
  });

  // t = 0: the sender posts the transfer request.
  tx.pio_inject_at(sim::from_us(os), endpoints - 1, 7, {0u, 0u});
  sched.run();

  if (*done_at < 0) {
    throw std::logic_error("measure_vi_transfer: transfer did not complete");
  }
  ViTransferResult r;
  r.bytes = bytes;
  r.elapsed = sim::to_us(*done_at);
  r.mbytes_per_sec = static_cast<double>(bytes) / r.elapsed;
  return r;
}

}  // namespace hyades::net
