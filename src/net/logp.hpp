// Packet-level measurement harnesses.
//
// These drive the detailed DES (Arctic fabric + StarT-X NIUs) the way the
// paper's own microbenchmarks drove the hardware:
//
//   * measure_pio_logp  -- a PIO ping-pong between two cross-tree nodes,
//     reproducing the LogP table of Figure 2;
//   * measure_vi_transfer -- a negotiated VI-mode block transfer,
//     reproducing the perceived-bandwidth curve of Figure 7.
#pragma once

#include <cstdint>

#include "support/units.hpp"

namespace hyades::net {

struct PioLogPResult {
  int payload_bytes = 0;
  Microseconds os = 0;        // send overhead (mmap store cost)
  Microseconds orr = 0;       // receive overhead (mmap load cost)
  Microseconds half_rtt = 0;  // measured round trip / 2
  Microseconds L = 0;         // derived: half_rtt - os - orr
};

PioLogPResult measure_pio_logp(int payload_bytes, int endpoints = 16,
                               int iterations = 64);

struct ViTransferResult {
  std::int64_t bytes = 0;
  Microseconds elapsed = 0;       // negotiation + stream + completion
  double mbytes_per_sec = 0;      // perceived transfer bandwidth
};

ViTransferResult measure_vi_transfer(std::int64_t bytes, int endpoints = 16);

}  // namespace hyades::net
