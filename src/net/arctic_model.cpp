#include "net/arctic_model.hpp"

#include <cmath>

#include "arctic/route.hpp"

namespace hyades::net {

ArcticModel::ArcticModel(int endpoints, startx::StartXConfig niu,
                         arctic::LinkConfig link, int radix)
    : endpoints_(endpoints),
      niu_(niu),
      link_(link),
      topo_(endpoints, arctic::shape_for(endpoints, radix), link) {}

std::string ArcticModel::name() const {
  if (endpoints_ == kPaperEndpoints && shape().radix == arctic::kRadix) {
    return "Arctic";
  }
  return topo_.name();
}

Microseconds ArcticModel::path_latency(int up_levels) const {
  // NIU tx latency, then per the cut-through model each of the 2p+2 links
  // forwards the header chunk and each of the 2p+1 router stages adds its
  // stage latency, then NIU rx processing.
  const int links = 2 * up_levels + 2;
  const int stages = 2 * up_levels + 1;
  const Microseconds per_link =
      static_cast<double>(link_.forward_bytes) / link_.bandwidth_mbytes_per_sec +
      link_.prop_delay_us;
  return niu_.tx_latency_us + links * per_link +
         stages * link_.stage_latency_us + niu_.rx_latency_us;
}

int ArcticModel::up_levels_for_round(int round) const {
  // Butterfly partners differ in id bit `round`; the climb height is
  // the highest base-radix digit separating them (ids 0 and 1<<round).
  // At the paper's radix 4 two id bits share each tree level: round / 2.
  const long long span = 1ll << round;
  long long leaf_span = shape().radix;
  int level = 0;
  while (leaf_span <= span) {
    leaf_span *= shape().radix;
    ++level;
  }
  return level;
}

LogPParams ArcticModel::small_message(int payload_bytes) const {
  LogPParams p;
  p.os = startx::pio_accesses(payload_bytes) * niu_.mmap_write_us;
  p.orr = startx::pio_accesses(payload_bytes) * niu_.mmap_read_us;
  // Cross-tree distance (the common case on a 16-node machine).
  const int max_up = shape().levels - 1;
  p.L = path_latency(max_up);
  return p;
}

Microseconds ArcticModel::transfer_overhead() const {
  // One-time negotiation for a VI transfer between two nodes (Section
  // 4.1): a PIO request/ack round trip, the DMA doorbell stores, and the
  // copy of the first chunk into the VI region (later chunk copies
  // overlap the DMA).
  const LogPParams small = small_message(8);
  return 2.0 * small.half_rtt() + 2.0 * niu_.mmap_write_us +
         static_cast<double>(niu_.vi_chunk_bytes) / niu_.copy_mbytes_per_sec;
}

Microseconds ArcticModel::transfer_time(std::int64_t bytes) const {
  return transfer_overhead() +
         static_cast<double>(bytes) / niu_.vi_payload_mbytes_per_sec;
}

double ArcticModel::exchange_bandwidth_mbytes() const {
  // copy into VI region + DMA + copy out, serialized: in the exchange the
  // reversal rule and per-tile scatter/gather defeat the overlap the
  // standalone benchmark achieves.
  return 1.0 / (1.0 / niu_.vi_payload_mbytes_per_sec +
                2.0 / niu_.copy_mbytes_per_sec);
}

Microseconds ArcticModel::exchange_transfer_time(std::int64_t bytes) const {
  return transfer_overhead() +
         static_cast<double>(bytes) / exchange_bandwidth_mbytes();
}

Microseconds ArcticModel::gsum_round_time(int round) const {
  // Symmetric butterfly round: each CPU stores its message (Os), then
  // polls the NIU with uncached reads until the partner's message is
  // seen.  Polls are quantized at the mmap read cost, so the effective
  // wait is ceil(L / read) reads; the detection read is followed by the
  // payload read, then the FP combine.
  const Microseconds os = startx::pio_accesses(8) * niu_.mmap_write_us;
  const Microseconds read = niu_.mmap_read_us;
  const Microseconds L = path_latency(up_levels_for_round(round));
  const double polls = std::ceil(L / read);
  return os + polls * read + 2.0 * read + gsum_cpu_add_us_;
}

}  // namespace hyades::net
