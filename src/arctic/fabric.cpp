#include "arctic/fabric.hpp"

#include <stdexcept>
#include <string>

namespace hyades::arctic {

UnreachableError::UnreachableError(int src_, int dst_)
    : std::runtime_error("Fabric: no surviving path from endpoint " +
                         std::to_string(src_) + " to endpoint " +
                         std::to_string(dst_)),
      src(src_),
      dst(dst_) {}

// A router stage: radix down-side outputs plus (below the top level)
// radix up-side outputs.  Input handling lives in
// Fabric::on_router_receive; the Router just owns its output ports.
struct Fabric::Router {
  std::vector<std::unique_ptr<OutputPort>> down;  // size radix
  std::vector<std::unique_ptr<OutputPort>> up;    // empty at the top level
};

Fabric::Fabric(sim::Scheduler& sched, int endpoints, FabricConfig cfg)
    : sched_(sched),
      endpoints_(endpoints),
      shape_{cfg.radix, levels_for(endpoints, cfg.radix)},
      levels_(shape_.levels),
      cfg_(cfg),
      route_rng_(cfg.seed) {
  if (endpoints < 2) {
    throw std::invalid_argument("Fabric: need at least 2 endpoints");
  }
  shape_.check();
  routers_per_level_ = shape_.routers_per_level();
  health_ = TopologyHealth(shape_);
  wire_topology();
  // Permanent kills from the fault plan fire through the virtual clock.
  for (const KillEvent& kill : cfg_.faults.kills) {
    sched_.schedule_after(sim::from_us(kill.at_us),
                          [this, kill] { apply_kill(kill); });
  }
}

Fabric::~Fabric() = default;

void Fabric::wire_topology() {
  routers_.resize(static_cast<std::size_t>(levels_));
  for (int l = 0; l < levels_; ++l) {
    auto& level = routers_[static_cast<std::size_t>(l)];
    level.reserve(static_cast<std::size_t>(routers_per_level_));
    for (int r = 0; r < routers_per_level_; ++r) {
      auto router = std::make_unique<Router>();
      // Down ports.
      for (int p = 0; p < shape_.radix; ++p) {
        OutputPort::HeaderFn fn;
        if (l == 0) {
          const int node = r * shape_.radix + p;
          fn = [this, node](Packet&& pkt) {
            deliver_to_endpoint(node, std::move(pkt));
          };
        } else {
          const int below = shape_.with_digit(r, l - 1, p);
          fn = [this, l, below](Packet&& pkt) {
            on_router_receive(l - 1, below, /*from_below=*/false,
                              std::move(pkt));
          };
        }
        router->down.push_back(
            std::make_unique<OutputPort>(sched_, cfg_.link, std::move(fn)));
      }
      // Up ports (absent at the top level).
      if (l < levels_ - 1) {
        for (int u = 0; u < shape_.radix; ++u) {
          const int above = shape_.with_digit(r, l, u);
          auto fn = [this, l, above](Packet&& pkt) {
            on_router_receive(l + 1, above, /*from_below=*/true,
                              std::move(pkt));
          };
          router->up.push_back(
              std::make_unique<OutputPort>(sched_, cfg_.link, std::move(fn)));
        }
      }
      level.push_back(std::move(router));
    }
  }

  // Endpoint injection links feed each node's leaf router.
  injection_.reserve(static_cast<std::size_t>(endpoints_));
  for (int node = 0; node < endpoints_; ++node) {
    auto fn = [this, leaf = shape_.leaf_of(node)](Packet&& pkt) {
      on_router_receive(0, leaf, /*from_below=*/true, std::move(pkt));
    };
    injection_.push_back(
        std::make_unique<OutputPort>(sched_, cfg_.link, std::move(fn)));
  }
}

void Fabric::inject(int src, int dst, Packet p) {
  if (src < 0 || src >= endpoints_ || dst < 0 || dst >= endpoints_) {
    throw std::out_of_range("Fabric::inject: bad endpoint");
  }
  if (!p.valid_format()) {
    throw std::invalid_argument("Fabric::inject: invalid packet format");
  }
  // Healthy fabrics take the fast path; with anything dead the degraded
  // search routes around the dead set (consuming the same RNG stream, so
  // the two paths are bit-identical when nothing is dead).
  Route route;
  if (health_.any_dead()) {
    const RoutedPath routed = compute_route_degraded(
        src, dst, shape_, health_,
        cfg_.random_uproute ? &route_rng_ : nullptr);
    if (routed.status == RouteStatus::kUnreachable) {
      ++stats_.unreachable_routes;
      throw UnreachableError(src, dst);
    }
    route = routed.route;
    ++stats_.degraded_routes;
  } else {
    route = compute_route(src, dst, shape_,
                          cfg_.random_uproute ? &route_rng_ : nullptr);
  }
  p.src = src;
  p.dst = dst;
  p.uproute = route.encode_uproute();
  p.random_uproute = cfg_.random_uproute;
  p.downroute = route.downroute;
  p.serial = next_serial_++;
  p.seal();
  // Link-error injection after sealing: a forced word (test hook) wins,
  // otherwise the fault plan decides per-packet and picks the word.
  int garble = corrupt_next_word_;
  corrupt_next_word_ = -1;
  if (garble < 0 && cfg_.faults.corrupt_injection(p.serial)) {
    garble = cfg_.faults.corrupt_word(p.serial, 2 + p.payload_words());
  }
  if (garble >= 0) {
    p.corrupt_word(garble);  // CRC now mismatches
    ++stats_.corrupted;
  }
  ++stats_.injected;
  injection_[static_cast<std::size_t>(src)]->submit(std::move(p));
}

void Fabric::on_router_receive(int level, int index, bool from_below,
                               Packet&& p) {
  ++stats_.router_stages;
  // A packet that reaches dead hardware is lost -- in-flight traffic
  // routed before the kill cannot be rescued, only retransmitted by the
  // end-to-end protocol above.
  if (health_.router_dead(level, index)) {
    ++stats_.dead_component_drops;
    return;
  }
  // Every stage verifies the CRC (Section 2.2); a failure is flagged, and
  // the packet continues so the endpoint's status bit reports it.
  if (!p.crc_ok()) p.crc_error = true;

  // Transient stage faults from the plan: a drop loses the packet here
  // (an overflowed input queue); a stall holds it extra time before it
  // contends for its output port.
  if (cfg_.faults.drop_at_stage(p.serial, level, index)) {
    ++stats_.dropped;
    return;
  }
  Microseconds stall_us = cfg_.faults.stall_at_stage(p.serial, level, index);
  if (stall_us > 0) ++stats_.stalled;

  Router& router = *routers_[static_cast<std::size_t>(level)]
                            [static_cast<std::size_t>(index)];
  const Route route = Route::decode(p.uproute, p.downroute, shape_);

  // Routing decision: a packet arriving from below is still climbing iff
  // its route demands more up levels than this stage.
  OutputPort* port = nullptr;
  if (from_below && route.up_levels > level) {
    const int u = route.up_ports[static_cast<std::size_t>(level)];
    if (health_.up_link_dead(level, index, u)) {
      ++stats_.dead_component_drops;  // cable died under an in-flight packet
      return;
    }
    port = router.up[static_cast<std::size_t>(u)].get();
  } else {
    const int q = route.down_port(level);
    // The down hop at level > 0 rides the cable registered as the up
    // link of the router below (endpoint links at level 0 never die).
    if (level > 0 &&
        health_.up_link_dead(level - 1, shape_.with_digit(index, level - 1, q),
                             shape_.digit(index, level - 1))) {
      ++stats_.dead_component_drops;
      return;
    }
    port = router.down[static_cast<std::size_t>(q)].get();
  }

  // The packet spends the router stage latency (< 0.15 us, Section 2.2)
  // -- plus any injected stall -- crossing the stage before contending
  // for the output port.
  sched_.schedule_after(
      sim::from_us(cfg_.link.stage_latency_us + stall_us),
      [port, pkt = std::move(p)]() mutable { port->submit(std::move(pkt)); });
}

void Fabric::deliver_to_endpoint(int node, Packet&& p) {
  // Endpoint CRC check: the NIU verifies the trailer and exposes a 1-bit
  // status to software.
  if (!p.crc_ok()) p.crc_error = true;
  ++stats_.delivered;
  if (p.crc_error) ++stats_.crc_flagged;
  if (deliver_) deliver_(node, std::move(p));
}

double Fabric::bisection_bandwidth_mbytes_per_sec() const {
  return 2.0 * static_cast<double>(endpoints_) *
         cfg_.link.bandwidth_mbytes_per_sec;
}

sim::SimTime Fabric::injection_free_at(int node) const {
  return injection_[static_cast<std::size_t>(node)]->free_at();
}

void Fabric::apply_kill(const KillEvent& kill) {
  if (kill.kind == KillEvent::Kind::kRouter) {
    if (!health_.router_dead(kill.level, kill.index)) {
      health_.kill_router(kill.level, kill.index);
      ++stats_.routers_killed;
    }
  } else {
    if (!health_.up_link_dead(kill.level, kill.index, kill.port)) {
      health_.kill_up_link(kill.level, kill.index, kill.port);
      ++stats_.links_killed;
    }
  }
}

}  // namespace hyades::arctic
