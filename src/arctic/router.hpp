// Output-port model shared by router stages and endpoint injection links.
//
// Arctic is a virtual cut-through network: a packet's header is forwarded
// downstream as soon as the first `forward_bytes` have serialized, while
// the full packet occupies the link for its complete wire time (which is
// what creates contention).  Each port keeps two FIFO queues, one per
// packet priority; the high-priority queue is always drained first, so a
// high-priority packet can never be blocked behind *queued* low-priority
// traffic (it can at most wait out one in-flight low packet, as in the
// real hardware).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "arctic/packet.hpp"
#include "sim/scheduler.hpp"

namespace hyades::arctic {

struct LinkConfig {
  double bandwidth_mbytes_per_sec = 150.0;  // per direction, per the paper
  double stage_latency_us = 0.15;           // router stage latency (paper)
  double prop_delay_us = 0.01;              // wire propagation
  // lint:allow(magic-topology): cut-through chunk size is a link
  // calibration value (bytes serialized before forwarding), not a shape.
  int forward_bytes = 16;
};

class OutputPort {
 public:
  // `on_header` fires when the cut-through header chunk has arrived at
  // the downstream element (router input or endpoint NIU).
  using HeaderFn = std::function<void(Packet&&)>;

  OutputPort(sim::Scheduler& sched, const LinkConfig& cfg, HeaderFn on_header)
      : sched_(sched), cfg_(cfg), on_header_(std::move(on_header)) {}

  OutputPort(const OutputPort&) = delete;
  OutputPort& operator=(const OutputPort&) = delete;
  OutputPort(OutputPort&&) = default;

  // Enqueue a packet for transmission; must be called from a scheduler
  // event (uses sched.now() as the enqueue time).
  void submit(Packet p);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queued() const {
    return queues_[0].size() + queues_[1].size();
  }
  [[nodiscard]] std::size_t max_queue_depth() const {
    return max_queue_depth_;
  }
  // Time when the port will next be idle assuming no new arrivals.
  [[nodiscard]] sim::SimTime free_at() const { return free_at_; }
  [[nodiscard]] std::uint64_t transmitted() const { return transmitted_; }
  [[nodiscard]] sim::SimTime busy_time() const { return busy_time_; }

 private:
  void start_next();

  sim::Scheduler& sched_;
  LinkConfig cfg_;
  HeaderFn on_header_;
  std::deque<Packet> queues_[2];  // [0]=low, [1]=high
  bool busy_ = false;
  sim::SimTime free_at_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::uint64_t transmitted_ = 0;
  sim::SimTime busy_time_ = 0;
};

}  // namespace hyades::arctic
