// Arctic packet, following Figure 1(b) of the paper:
//
//   word 0: priority | downroute(16) | reserved
//   word 1: uproute(14) | random-uproute | usr tag(11) | size(5)
//   payload[0..size-1], size in [2, 22] 32-bit words
//
// plus a link-level CRC-32 trailer.  Routers verify the CRC at every
// stage; endpoints check a 1-bit status flag.
//
// Generalized shapes (radix != 4 or deep trees) can need route words
// wider than Figure 1(b)'s 16/14-bit fields.  The overflow bits ride an
// *extended* header word (header_word_ext) that exists on the wire --
// and in the CRC -- only when nonzero, so every paper-shape packet
// image stays bit-identical to the original layout.
#pragma once

#include <cstdint>
#include <vector>

#include "arctic/crc.hpp"

namespace hyades::arctic {

enum class Priority : std::uint8_t { kLow = 0, kHigh = 1 };

inline constexpr int kMinPayloadWords = 2;
inline constexpr int kMaxPayloadWords = 22;
inline constexpr int kWordBytes = 4;     // one 32-bit wire word
inline constexpr int kHeaderBytes = 8;   // two 32-bit header words
inline constexpr int kCrcBytes = 4;      // link-level trailer

struct Packet {
  Priority priority = Priority::kLow;
  std::uint32_t downroute = 0;  // port_bits consumed per down level
  std::uint32_t uproute = 0;    // port_bits per up level + level count
  bool random_uproute = false;  // let routers pick up-ports at random
  std::uint16_t usr_tag = 0;    // 11-bit user tag
  std::vector<std::uint32_t> payload;

  // Bookkeeping for the simulator (not on the wire).
  int src = -1;
  int dst = -1;
  std::uint32_t crc = 0;       // trailer as transmitted
  bool crc_error = false;      // sticky: set if any stage saw a mismatch
  std::uint64_t serial = 0;    // injection order, for FIFO assertions

  [[nodiscard]] int payload_words() const {
    return static_cast<int>(payload.size());
  }
  [[nodiscard]] int payload_bytes() const {
    return payload_words() * kWordBytes;
  }
  // Total bytes on the wire (header + payload + CRC trailer); the
  // extended header word costs an extra word when present.
  [[nodiscard]] int wire_bytes() const {
    return kHeaderBytes + (header_word_ext() != 0 ? kWordBytes : 0) +
           payload_bytes() + kCrcBytes;
  }

  // Encode the two header words per Figure 1(b).
  [[nodiscard]] std::uint32_t header_word0() const;
  [[nodiscard]] std::uint32_t header_word1() const;
  // Route-word bits past the Figure 1(b) field widths (downroute bits
  // 16+ in the low half, uproute bits 14+ in the high half).  Zero --
  // and absent from the wire image -- for every paper-shape route.
  [[nodiscard]] std::uint32_t header_word_ext() const;

  // Garble wire word `w` after sealing so the CRC no longer matches.
  // Words 0 and 1 are the header words; the flipped bits (priority,
  // usr-tag LSB) are outside the routing fields so the packet still
  // reaches its destination and the endpoint status bit -- not a silent
  // loss -- reports the error.  Words >= 2 map to payload[w - 2].
  void corrupt_word(int w);

  // CRC over header words + payload.
  [[nodiscard]] std::uint32_t compute_crc() const;
  void seal() { crc = compute_crc(); }
  [[nodiscard]] bool crc_ok() const { return crc == compute_crc(); }

  // Validity per the Figure 1(b) format limits.
  [[nodiscard]] bool valid_format() const {
    return payload_words() >= kMinPayloadWords &&
           payload_words() <= kMaxPayloadWords && usr_tag < (1u << 11);
  }
};

// Decode helpers (used by tests to verify the bit layout round-trips).
struct DecodedHeader {
  Priority priority;
  std::uint16_t downroute;
  std::uint16_t uproute;
  bool random_uproute;
  std::uint16_t usr_tag;
  int size_words;
};
DecodedHeader decode_header(std::uint32_t w0, std::uint32_t w1);

}  // namespace hyades::arctic
