// The Arctic Switch Fabric: a 4-ary n-tree of cut-through routers.
//
// Semantics reproduced from Section 2.2 of the paper:
//   * packet-switched multi-stage fat-tree, 150 MByte/sec per link per
//     direction, < 0.15 us router stage latency;
//   * FIFO ordering of messages sent between two nodes along the same
//     path (deterministic routing keeps each pair on one path);
//   * two message priorities; a high-priority message cannot be blocked
//     by queued low-priority messages;
//   * CRC verified at every router stage and at the endpoints; software
//     only checks a 1-bit status flag.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "arctic/fault.hpp"
#include "arctic/packet.hpp"
#include "arctic/route.hpp"
#include "arctic/router.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace hyades::arctic {

struct FabricConfig {
  LinkConfig link;
  int radix = kRadix;           // router radix (paper: 4-ary Arctic)
  bool random_uproute = false;  // adaptive up-routing (breaks FIFO pairwise order)
  std::uint64_t seed = 1;       // for random uproute (never consumed by faults)
  FaultPlan faults;             // deterministic fault injection (default: off)
};

struct FabricStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t crc_flagged = 0;   // packets delivered with the error bit set
  std::uint64_t router_stages = 0; // total stages traversed by all packets
  std::uint64_t corrupted = 0;     // words garbled by the fault plan
  std::uint64_t dropped = 0;       // packets lost at a router stage
  std::uint64_t stalled = 0;       // stages that held a packet extra time
  std::uint64_t links_killed = 0;   // permanent link deaths applied
  std::uint64_t routers_killed = 0; // permanent router deaths applied
  std::uint64_t dead_component_drops = 0;  // packets lost into dead hardware
  std::uint64_t degraded_routes = 0;   // injections routed around a dead set
  std::uint64_t unreachable_routes = 0;  // injections with no surviving path
};

// Thrown by inject() when the dead set disconnects src from dst.
class UnreachableError : public std::runtime_error {
 public:
  UnreachableError(int src, int dst);
  int src;
  int dst;
};

class Fabric {
 public:
  using DeliverFn = std::function<void(int node, Packet&&)>;

  Fabric(sim::Scheduler& sched, int endpoints, FabricConfig cfg = {});
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  void set_delivery_handler(DeliverFn fn) { deliver_ = std::move(fn); }

  // Inject a packet from `src` to `dst`.  Route fields and CRC are filled
  // in here; injection contends for the endpoint's uplink.  Must be
  // called from within a scheduler event (or before the run starts).
  void inject(int src, int dst, Packet p);

  // Corrupt wire word `word` of the next injected packet after it is
  // sealed (simulates a link error; routers flag it via CRC).  Word 0/1
  // are the header words -- compute_crc covers them, so a garbled
  // header is flagged just like a garbled payload; word w >= 2 flips a
  // bit of payload[w - 2].  Defaults to the first payload word.
  void corrupt_next_injection(int word = 2) { corrupt_next_word_ = word; }

  [[nodiscard]] int endpoints() const { return endpoints_; }
  [[nodiscard]] int levels() const { return levels_; }
  [[nodiscard]] int routers_per_level() const { return routers_per_level_; }
  [[nodiscard]] const FatTreeShape& shape() const { return shape_; }
  [[nodiscard]] const FabricStats& stats() const { return stats_; }

  // Bisection bandwidth in MByte/sec for an N-endpoint full fat tree:
  // 2 * N * link bandwidth (both directions across the root cut).
  [[nodiscard]] double bisection_bandwidth_mbytes_per_sec() const;

  // Backpressure query: when the endpoint's injection link next frees.
  [[nodiscard]] sim::SimTime injection_free_at(int node) const;

  // Apply a permanent kill immediately (plan kills are scheduled through
  // the virtual clock in the constructor; tests and operators may also
  // kill components directly).  Packets already queued toward the dead
  // component are lost when they reach it; subsequent injections route
  // around it.
  void apply_kill(const KillEvent& kill);

  [[nodiscard]] const TopologyHealth& health() const { return health_; }

 private:
  struct Router;

  void wire_topology();
  void on_router_receive(int level, int index, bool from_below, Packet&& p);
  void deliver_to_endpoint(int node, Packet&& p);

  sim::Scheduler& sched_;
  int endpoints_;
  FatTreeShape shape_;
  int levels_;
  int routers_per_level_;
  FabricConfig cfg_;
  // Routing-only RNG stream.  Fault decisions are pure hashes keyed on
  // the packet serial (see FaultPlan), so enabling faults never
  // perturbs adaptive route choices.
  SplitMix64 route_rng_;
  DeliverFn deliver_;
  FabricStats stats_;
  TopologyHealth health_;
  int corrupt_next_word_ = -1;  // -1: no forced corruption pending
  std::uint64_t next_serial_ = 0;

  std::vector<std::vector<std::unique_ptr<Router>>> routers_;  // [level][index]
  std::vector<std::unique_ptr<OutputPort>> injection_;         // per endpoint
};

}  // namespace hyades::arctic
