// Up/down routing for the Arctic fat-tree (a radix-r n-tree; the paper's
// machine is the 4-ary case).
//
// Endpoints are numbered 0..r^n-1 and viewed as n base-r digits
// d_{n-1}..d_0.  Level-0 (leaf) routers attach endpoints; each level has
// r^(n-1) routers.  Router (l, r) up-port u connects to router
// (l+1, r with digit l := u); its inverse is the down wiring.  A packet
// ascends `up_levels` stages (any up port works -- this is the fat tree's
// path diversity, exploited by the "random uproute" header bit) and then
// descends following the destination digits: the level-l router on the
// down path uses down port d_l.
//
// The tree shape is carried by FatTreeShape{radix, levels}.  The paper's
// exact radix-4 layout is the golden-locked default: every function here
// has a radix-4 overload whose bit-level behavior (route words, RNG
// stream consumption, fallback order) is identical to the original
// fixed-radix implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace hyades::arctic {

inline constexpr int kRadix = 4;      // the paper's Arctic router radix
inline constexpr int kMaxLevels = 5;  // 14-bit uproute fits 5 up-port choices
inline constexpr int kMinShapeRadix = 2;
inline constexpr int kMaxShapeRadix = 8;
inline constexpr int kMaxShapeLevels = 16;  // route-word width cap (see check)
// Route words are carried in 32-bit fields; the encodings below must
// leave the top bits clear so the packet's extended header word can
// carry the overflow past the legacy Figure 1(b) field widths.
inline constexpr int kRouteWordBits = 30;

// Parameterized fat-tree shape: `levels` tree levels of radix-`radix`
// routers, attaching up to radix^levels endpoints.  Width-checked: a
// shape is valid only when its up/down route words fit the 32-bit route
// encoding (radix 2..8; e.g. >= 4096 endpoints at every radix).
struct FatTreeShape {
  int radix = kRadix;
  int levels = 1;

  // Bits per port in the route words: 1 for radix 2, 2 up to radix 4,
  // 3 up to radix 8.  Radix 4 reproduces the paper's 2-bit fields.
  [[nodiscard]] int port_bits() const {
    int bits = 0;
    for (int v = radix - 1; v > 0; v >>= 1) ++bits;
    return bits;
  }
  // Bits for the up-level count in the uproute word.  Never fewer than
  // the paper's 3, so every radix-4 encoding stays bit-identical.
  [[nodiscard]] int count_bits() const {
    int bits = 0;
    for (int v = levels - 1; v > 0; v >>= 1) ++bits;
    return bits > 3 ? bits : 3;
  }
  // Throws std::invalid_argument when the shape is out of range or its
  // route words would not fit the width-checked encoding.
  void check() const;

  // Digit l (base radix) of endpoint or router address e.
  [[nodiscard]] int digit(int e, int l) const {
    int v = e;
    for (int i = 0; i < l; ++i) v /= radix;
    return v % radix;
  }
  // Replace base-radix digit `pos` of `value` with `d`.
  [[nodiscard]] int with_digit(int value, int pos, int d) const {
    int scale = 1;
    for (int i = 0; i < pos; ++i) scale *= radix;
    return value + (d - (value / scale) % radix) * scale;
  }
  // Leaf router attaching endpoint e.
  [[nodiscard]] int leaf_of(int e) const { return e / radix; }

  [[nodiscard]] int routers_per_level() const {
    int n = 1;
    for (int l = 0; l < levels - 1; ++l) n *= radix;
    return n;
  }
  [[nodiscard]] int max_endpoints() const {
    return routers_per_level() * radix;
  }
};

// Number of tree levels (n) needed for `endpoints` nodes at the paper's
// radix 4; endpoints is rounded up to the next power of 4.  At least 1.
int levels_for(int endpoints);
// Shape-generic form; the returned level count is width-checked.
int levels_for(int endpoints, int radix);
// Convenience: the checked shape covering `endpoints` at `radix`.
FatTreeShape shape_for(int endpoints, int radix);

// Digit l (base 4) of endpoint address e (paper-shape helper).
inline int digit(int e, int l) { return (e >> (2 * l)) & 3; }

struct Route {
  int up_levels = 0;                        // stages to ascend
  std::array<std::uint8_t, kMaxShapeLevels> up_ports{};  // up port per level
  std::uint32_t downroute = 0;  // port_bits-wide down port per level
  // Wire-encoding geometry.  Defaults are the paper's radix-4 layout
  // (2-bit ports, 3-bit level count); compute_route/decode overwrite
  // them from the shape so down_port/encode stay shape-correct.
  std::uint8_t port_bits = 2;
  std::uint8_t count_bits = 3;

  [[nodiscard]] int down_port(int level) const {
    const std::uint32_t mask = (1u << port_bits) - 1u;
    return static_cast<int>((downroute >> (port_bits * level)) & mask);
  }
  // Total router stages traversed: 2*up_levels + 1.
  [[nodiscard]] int router_hops() const { return 2 * up_levels + 1; }
  // Total link hops including endpoint links: router_hops() + 1.
  [[nodiscard]] int link_hops() const { return router_hops() + 1; }

  // Encode up_levels + up ports into the uproute word: bits
  // [count_bits-1:0] = up_levels, then port_bits per climbed level.
  // The radix-4 default (bits [2:0] = up_levels, port l at bits
  // [3+2l+1 : 3+2l]) is the paper's 14-bit layout, bit for bit.
  [[nodiscard]] std::uint32_t encode_uproute() const;
  // Paper-shape (radix-4) decode.
  static Route decode(std::uint32_t uproute, std::uint32_t downroute);
  static Route decode(std::uint32_t uproute, std::uint32_t downroute,
                      const FatTreeShape& shape);
};

// Compute the route from src to dst.  If rng is non-null the up ports
// are chosen at random (the adaptive "random uproute" mode); otherwise a
// deterministic choice (a pairwise digit hash) is made, which keeps
// every (src,dst) pair on a single path and hence preserves Arctic's
// FIFO ordering guarantee.  The int overload is the paper's radix-4
// tree with `n_levels` levels.
Route compute_route(int src, int dst, int n_levels, SplitMix64* rng = nullptr);
Route compute_route(int src, int dst, const FatTreeShape& shape,
                    SplitMix64* rng = nullptr);

// Router stages on the deterministic path between src and dst.
int router_hops(int src, int dst, int n_levels);
int router_hops(int src, int dst, const FatTreeShape& shape);

// ---- degraded-mode routing (hard failures) ----------------------------

// Health view of one fabric: which routers are dead and which
// inter-router links are dead.  A link is identified by its *lower*
// endpoint: up port `u` of router (level, index); the reverse (down)
// direction of the same physical cable dies with it.  Endpoint
// injection/delivery links are not killable -- a node that loses its
// leaf router is simply partitioned.
class TopologyHealth {
 public:
  TopologyHealth() = default;
  // Paper-shape (radix-4) view with an explicit router count per level.
  TopologyHealth(int n_levels, int routers_per_level);
  explicit TopologyHealth(const FatTreeShape& shape);

  void kill_router(int level, int index);
  void kill_up_link(int level, int index, int up_port);

  [[nodiscard]] bool router_dead(int level, int index) const {
    return !router_dead_.empty() &&
           router_dead_[static_cast<std::size_t>(level * routers_per_level_ +
                                                 index)] != 0;
  }
  [[nodiscard]] bool up_link_dead(int level, int index, int up_port) const {
    return !link_dead_.empty() &&
           link_dead_[static_cast<std::size_t>(
               (level * routers_per_level_ + index) * radix_ + up_port)] != 0;
  }
  [[nodiscard]] bool any_dead() const {
    return dead_routers_ + dead_links_ > 0;
  }
  [[nodiscard]] int dead_routers() const { return dead_routers_; }
  [[nodiscard]] int dead_links() const { return dead_links_; }
  [[nodiscard]] int levels() const { return levels_; }
  [[nodiscard]] int radix() const { return radix_; }

 private:
  int levels_ = 0;
  int routers_per_level_ = 0;
  int radix_ = kRadix;
  std::vector<char> router_dead_;  // [level * routers_per_level + index]
  std::vector<char> link_dead_;    // [router slot * radix + up port]
  int dead_routers_ = 0;
  int dead_links_ = 0;
};

enum class RouteStatus { kOk, kUnreachable };

struct RoutedPath {
  RouteStatus status = RouteStatus::kUnreachable;
  Route route;
};

// Topology-aware routing that excludes dead up-ports and routers using
// the fat tree's path diversity.  The search tries the minimal climb
// height first, then over-climbs one level at a time; at each level the
// candidate up ports are probed in a deterministic fallback order
// starting from the port compute_route would have picked (so with
// nothing dead the result -- and, in random-uproute mode, the RNG
// stream consumption -- is bit-identical to compute_route).  Returns
// kUnreachable exactly when the dead set disconnects src from dst under
// up*/down* routing.  The int overload is the radix-4 tree.
RoutedPath compute_route_degraded(int src, int dst, int n_levels,
                                  const TopologyHealth& health,
                                  SplitMix64* rng = nullptr);
RoutedPath compute_route_degraded(int src, int dst, const FatTreeShape& shape,
                                  const TopologyHealth& health,
                                  SplitMix64* rng = nullptr);

// True when `route` carries a packet from src to dst over live routers
// and links only (used by tests to validate degraded routes).  The
// shape is taken from `health` (radix) and the route's own encoding.
bool route_survives(int src, int dst, const Route& route,
                    const TopologyHealth& health);

}  // namespace hyades::arctic
