// Up/down routing for the Arctic fat-tree (a 4-ary n-tree).
//
// Endpoints are numbered 0..4^n-1 and viewed as n base-4 digits
// d_{n-1}..d_0.  Level-0 (leaf) routers attach endpoints; each level has
// 4^(n-1) routers.  Router (l, r) up-port u connects to router
// (l+1, r with digit l := u); its inverse is the down wiring.  A packet
// ascends `up_levels` stages (any up port works -- this is the fat tree's
// path diversity, exploited by the "random uproute" header bit) and then
// descends following the destination digits: the level-l router on the
// down path uses down port d_l.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace hyades::arctic {

inline constexpr int kRadix = 4;
inline constexpr int kMaxLevels = 5;  // uproute field fits 5 up-port choices

// Number of tree levels (n) needed for `endpoints` nodes; endpoints is
// rounded up to the next power of 4.  At least 1.
int levels_for(int endpoints);

// Digit l (base 4) of endpoint address e.
inline int digit(int e, int l) { return (e >> (2 * l)) & 3; }

struct Route {
  int up_levels = 0;                        // stages to ascend
  std::array<std::uint8_t, kMaxLevels> up_ports{};  // chosen up port per level
  std::uint16_t downroute = 0;              // bits [2l+1:2l] = down port at level l

  [[nodiscard]] int down_port(int level) const {
    return (downroute >> (2 * level)) & 3;
  }
  // Total router stages traversed: 2*up_levels + 1.
  [[nodiscard]] int router_hops() const { return 2 * up_levels + 1; }
  // Total link hops including endpoint links: router_hops() + 1.
  [[nodiscard]] int link_hops() const { return router_hops() + 1; }

  // Encode up_levels + up ports into the 14-bit uproute header field:
  // bits [2:0] = up_levels, bits [3+2l+4 : 3+2l] = up port for level l.
  [[nodiscard]] std::uint16_t encode_uproute() const;
  static Route decode(std::uint16_t uproute, std::uint16_t downroute);
};

// Compute the route from src to dst in an n-level tree.  If rng is
// non-null the up ports are chosen at random (the adaptive "random
// uproute" mode); otherwise a deterministic choice (destination digits)
// is made, which keeps every (src,dst) pair on a single path and hence
// preserves Arctic's FIFO ordering guarantee.
Route compute_route(int src, int dst, int n_levels, SplitMix64* rng = nullptr);

// Router stages on the deterministic path between src and dst.
int router_hops(int src, int dst, int n_levels);

// ---- degraded-mode routing (hard failures) ----------------------------

// Health view of one fabric: which routers are dead and which
// inter-router links are dead.  A link is identified by its *lower*
// endpoint: up port `u` of router (level, index); the reverse (down)
// direction of the same physical cable dies with it.  Endpoint
// injection/delivery links are not killable -- a node that loses its
// leaf router is simply partitioned.
class TopologyHealth {
 public:
  TopologyHealth() = default;
  TopologyHealth(int n_levels, int routers_per_level);

  void kill_router(int level, int index);
  void kill_up_link(int level, int index, int up_port);

  [[nodiscard]] bool router_dead(int level, int index) const {
    return !router_dead_.empty() &&
           router_dead_[static_cast<std::size_t>(level * routers_per_level_ +
                                                 index)] != 0;
  }
  [[nodiscard]] bool up_link_dead(int level, int index, int up_port) const {
    return !link_dead_.empty() &&
           link_dead_[static_cast<std::size_t>(
               (level * routers_per_level_ + index) * kRadix + up_port)] != 0;
  }
  [[nodiscard]] bool any_dead() const {
    return dead_routers_ + dead_links_ > 0;
  }
  [[nodiscard]] int dead_routers() const { return dead_routers_; }
  [[nodiscard]] int dead_links() const { return dead_links_; }
  [[nodiscard]] int levels() const { return levels_; }

 private:
  int levels_ = 0;
  int routers_per_level_ = 0;
  std::vector<char> router_dead_;  // [level * routers_per_level + index]
  std::vector<char> link_dead_;    // [router slot * kRadix + up port]
  int dead_routers_ = 0;
  int dead_links_ = 0;
};

enum class RouteStatus { kOk, kUnreachable };

struct RoutedPath {
  RouteStatus status = RouteStatus::kUnreachable;
  Route route;
};

// Topology-aware routing that excludes dead up-ports and routers using
// the fat tree's path diversity.  The search tries the minimal climb
// height first, then over-climbs one level at a time; at each level the
// candidate up ports are probed in a deterministic fallback order
// starting from the port compute_route would have picked (so with
// nothing dead the result -- and, in random-uproute mode, the RNG
// stream consumption -- is bit-identical to compute_route).  Returns
// kUnreachable exactly when the dead set disconnects src from dst under
// up*/down* routing.
RoutedPath compute_route_degraded(int src, int dst, int n_levels,
                                  const TopologyHealth& health,
                                  SplitMix64* rng = nullptr);

// True when `route` carries a packet from src to dst over live routers
// and links only (used by tests to validate degraded routes).
bool route_survives(int src, int dst, const Route& route,
                    const TopologyHealth& health);

}  // namespace hyades::arctic
