// Up/down routing for the Arctic fat-tree (a 4-ary n-tree).
//
// Endpoints are numbered 0..4^n-1 and viewed as n base-4 digits
// d_{n-1}..d_0.  Level-0 (leaf) routers attach endpoints; each level has
// 4^(n-1) routers.  Router (l, r) up-port u connects to router
// (l+1, r with digit l := u); its inverse is the down wiring.  A packet
// ascends `up_levels` stages (any up port works -- this is the fat tree's
// path diversity, exploited by the "random uproute" header bit) and then
// descends following the destination digits: the level-l router on the
// down path uses down port d_l.
#pragma once

#include <array>
#include <cstdint>

#include "support/rng.hpp"

namespace hyades::arctic {

inline constexpr int kRadix = 4;
inline constexpr int kMaxLevels = 5;  // uproute field fits 5 up-port choices

// Number of tree levels (n) needed for `endpoints` nodes; endpoints is
// rounded up to the next power of 4.  At least 1.
int levels_for(int endpoints);

// Digit l (base 4) of endpoint address e.
inline int digit(int e, int l) { return (e >> (2 * l)) & 3; }

struct Route {
  int up_levels = 0;                        // stages to ascend
  std::array<std::uint8_t, kMaxLevels> up_ports{};  // chosen up port per level
  std::uint16_t downroute = 0;              // bits [2l+1:2l] = down port at level l

  [[nodiscard]] int down_port(int level) const {
    return (downroute >> (2 * level)) & 3;
  }
  // Total router stages traversed: 2*up_levels + 1.
  [[nodiscard]] int router_hops() const { return 2 * up_levels + 1; }
  // Total link hops including endpoint links: router_hops() + 1.
  [[nodiscard]] int link_hops() const { return router_hops() + 1; }

  // Encode up_levels + up ports into the 14-bit uproute header field:
  // bits [2:0] = up_levels, bits [3+2l+4 : 3+2l] = up port for level l.
  [[nodiscard]] std::uint16_t encode_uproute() const;
  static Route decode(std::uint16_t uproute, std::uint16_t downroute);
};

// Compute the route from src to dst in an n-level tree.  If rng is
// non-null the up ports are chosen at random (the adaptive "random
// uproute" mode); otherwise a deterministic choice (destination digits)
// is made, which keeps every (src,dst) pair on a single path and hence
// preserves Arctic's FIFO ordering guarantee.
Route compute_route(int src, int dst, int n_levels, SplitMix64* rng = nullptr);

// Router stages on the deterministic path between src and dst.
int router_hops(int src, int dst, int n_levels);

}  // namespace hyades::arctic
