#include "arctic/router.hpp"

#include <algorithm>
#include <utility>

namespace hyades::arctic {

void OutputPort::submit(Packet p) {
  const int pri = (p.priority == Priority::kHigh) ? 1 : 0;
  queues_[pri].push_back(std::move(p));
  max_queue_depth_ = std::max(max_queue_depth_, queued());
  if (!busy_) start_next();
}

void OutputPort::start_next() {
  Packet p;
  if (!queues_[1].empty()) {
    p = std::move(queues_[1].front());
    queues_[1].pop_front();
  } else if (!queues_[0].empty()) {
    p = std::move(queues_[0].front());
    queues_[0].pop_front();
  } else {
    return;
  }

  busy_ = true;
  const double bw = cfg_.bandwidth_mbytes_per_sec;
  const int header_chunk = std::min(cfg_.forward_bytes, p.wire_bytes());
  const sim::SimTime header_time =
      sim::transfer_time(header_chunk, bw) + sim::from_us(cfg_.prop_delay_us);
  const sim::SimTime full_time = sim::transfer_time(p.wire_bytes(), bw);
  free_at_ = sched_.now() + full_time;
  busy_time_ += full_time;
  ++transmitted_;

  // Header reaches the downstream element after the cut-through chunk.
  sched_.schedule_after(header_time,
                        [this, pkt = std::move(p)]() mutable {
                          on_header_(std::move(pkt));
                        });
  // The port frees once the tail has left.
  sched_.schedule_after(full_time, [this] {
    busy_ = false;
    start_next();
  });
}

}  // namespace hyades::arctic
