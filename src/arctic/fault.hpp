// Deterministic fault injection for the Arctic fabric simulator.
//
// Mirrors cluster::FaultPlan's philosophy at packet granularity: every
// decision -- corrupt this packet? which word? drop it at this router
// stage? stall this stage? -- is a pure hash of (seed, packet serial,
// stage coordinates), so the fault pattern is reproducible and, crucial
// for the routing-stream independence requirement, consuming fault
// decisions never touches the Fabric's sequential routing RNG: adaptive
// `random_uproute` paths are bit-identical with faults on or off.
#pragma once

#include <cstdint>
#include <vector>

#include "arctic/route.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

namespace hyades::arctic {

// A permanent hard failure: at `at_us` of virtual time a fabric
// component dies and stays dead for the rest of the run.  Links are
// addressed by their lower endpoint (up port `port` of router
// (level, index)); both directions of the cable die together.
struct KillEvent {
  enum class Kind { kLink, kRouter };
  Kind kind = Kind::kLink;
  int level = 0;
  int index = 0;
  int port = 0;  // up port for kLink; ignored for kRouter
  Microseconds at_us = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 0x5eedfa1ull;

  // Per-packet probability that injection garbles one word (chosen
  // uniformly over header words + payload; CRC flags it downstream).
  double corrupt_prob = 0.0;
  // Per-stage probability that a router input drops the packet (models
  // a transient router/NIU stall overflowing an input queue).
  double drop_prob = 0.0;
  // Per-stage probability of a transient stall, and its length: the
  // packet is held `stall_us` before contending for its output port.
  double stall_prob = 0.0;
  Microseconds stall_us = 2.0;

  // Permanent component deaths, applied by the fabric at their
  // scheduled virtual times.  Unlike the probabilistic fates above these
  // are an explicit list, but the helper below derives one from a seed
  // with the same pure-hash discipline.
  std::vector<KillEvent> kills;

  [[nodiscard]] bool enabled() const {
    return corrupt_prob > 0.0 || drop_prob > 0.0 || stall_prob > 0.0 ||
           has_kills();
  }
  [[nodiscard]] bool has_kills() const { return !kills.empty(); }

  [[nodiscard]] bool corrupt_injection(std::uint64_t serial) const {
    return corrupt_prob > 0.0 &&
           hash_unit(seed, {0x636f7272ull, serial}) < corrupt_prob;
  }
  // Which word of an n-word packet image (2 header words + payload) the
  // corruption hits.
  [[nodiscard]] int corrupt_word(std::uint64_t serial, int nwords) const {
    return static_cast<int>(hash_mix(seed, {0x776f7264ull, serial}) %
                            static_cast<std::uint64_t>(nwords));
  }
  [[nodiscard]] bool drop_at_stage(std::uint64_t serial, int level,
                                   int index) const {
    return drop_prob > 0.0 &&
           hash_unit(seed, {0x64726f70ull, serial,
                            static_cast<std::uint64_t>(level),
                            static_cast<std::uint64_t>(index)}) < drop_prob;
  }
  [[nodiscard]] Microseconds stall_at_stage(std::uint64_t serial, int level,
                                            int index) const {
    return (stall_prob > 0.0 &&
            hash_unit(seed, {0x7374616cull, serial,
                             static_cast<std::uint64_t>(level),
                             static_cast<std::uint64_t>(index)}) < stall_prob)
               ? stall_us
               : 0.0;
  }
};

// Derive `count` seeded link-kill events for an n-level tree with
// `routers_per_level` routers per level.  Pure hash of (seed, kill
// ordinal): same seed => same schedule, independent of everything else.
// Kill times are spread uniformly over [0, window_us).  At most one up
// link per router is killed, so in a full fat tree the schedule is
// always survivable (the other radix-1 up ports remain).  `radix`
// bounds the port draw; the default is the paper's Arctic radix.
std::vector<KillEvent> seeded_link_kills(std::uint64_t seed, int count,
                                         int n_levels, int routers_per_level,
                                         Microseconds window_us,
                                         int radix = kRadix);

}  // namespace hyades::arctic
