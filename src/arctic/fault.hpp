// Deterministic fault injection for the Arctic fabric simulator.
//
// Mirrors cluster::FaultPlan's philosophy at packet granularity: every
// decision -- corrupt this packet? which word? drop it at this router
// stage? stall this stage? -- is a pure hash of (seed, packet serial,
// stage coordinates), so the fault pattern is reproducible and, crucial
// for the routing-stream independence requirement, consuming fault
// decisions never touches the Fabric's sequential routing RNG: adaptive
// `random_uproute` paths are bit-identical with faults on or off.
#pragma once

#include <cstdint>

#include "support/rng.hpp"
#include "support/units.hpp"

namespace hyades::arctic {

struct FaultPlan {
  std::uint64_t seed = 0x5eedfa1ull;

  // Per-packet probability that injection garbles one word (chosen
  // uniformly over header words + payload; CRC flags it downstream).
  double corrupt_prob = 0.0;
  // Per-stage probability that a router input drops the packet (models
  // a transient router/NIU stall overflowing an input queue).
  double drop_prob = 0.0;
  // Per-stage probability of a transient stall, and its length: the
  // packet is held `stall_us` before contending for its output port.
  double stall_prob = 0.0;
  Microseconds stall_us = 2.0;

  [[nodiscard]] bool enabled() const {
    return corrupt_prob > 0.0 || drop_prob > 0.0 || stall_prob > 0.0;
  }

  [[nodiscard]] bool corrupt_injection(std::uint64_t serial) const {
    return corrupt_prob > 0.0 &&
           hash_unit(seed, {0x636f7272ull, serial}) < corrupt_prob;
  }
  // Which word of an n-word packet image (2 header words + payload) the
  // corruption hits.
  [[nodiscard]] int corrupt_word(std::uint64_t serial, int nwords) const {
    return static_cast<int>(hash_mix(seed, {0x776f7264ull, serial}) %
                            static_cast<std::uint64_t>(nwords));
  }
  [[nodiscard]] bool drop_at_stage(std::uint64_t serial, int level,
                                   int index) const {
    return drop_prob > 0.0 &&
           hash_unit(seed, {0x64726f70ull, serial,
                            static_cast<std::uint64_t>(level),
                            static_cast<std::uint64_t>(index)}) < drop_prob;
  }
  [[nodiscard]] Microseconds stall_at_stage(std::uint64_t serial, int level,
                                            int index) const {
    return (stall_prob > 0.0 &&
            hash_unit(seed, {0x7374616cull, serial,
                             static_cast<std::uint64_t>(level),
                             static_cast<std::uint64_t>(index)}) < stall_prob)
               ? stall_us
               : 0.0;
  }
};

}  // namespace hyades::arctic
