#include "arctic/packet.hpp"

#include <span>

namespace hyades::arctic {

// word 0 layout: [31] priority | [30:15] downroute | [14:0] reserved
std::uint32_t Packet::header_word0() const {
  std::uint32_t w = 0;
  w |= (priority == Priority::kHigh ? 1u : 0u) << 31;
  w |= (downroute & 0xFFFFu) << 15;
  return w;
}

// word 1 layout: [31:18] uproute | [17] random | [16:6] usr tag | [5:1] size
// (bit 0 reserved)
std::uint32_t Packet::header_word1() const {
  std::uint32_t w = 0;
  w |= (uproute & 0x3FFFu) << 18;
  w |= (random_uproute ? 1u : 0u) << 17;
  w |= (static_cast<std::uint32_t>(usr_tag) & 0x7FFu) << 6;
  w |= (static_cast<std::uint32_t>(payload_words()) & 0x1Fu) << 1;
  return w;
}

// extended word layout: [15:0] downroute bits 16+, [31:16] uproute bits
// 14+.  Zero for every route that fits the Figure 1(b) fields, in which
// case the word is not on the wire at all.
std::uint32_t Packet::header_word_ext() const {
  return (downroute >> 16) | ((uproute >> 14) << 16);
}

DecodedHeader decode_header(std::uint32_t w0, std::uint32_t w1) {
  DecodedHeader h{};
  h.priority = (w0 >> 31) ? Priority::kHigh : Priority::kLow;
  h.downroute = static_cast<std::uint16_t>((w0 >> 15) & 0xFFFFu);
  h.uproute = static_cast<std::uint16_t>((w1 >> 18) & 0x3FFFu);
  h.random_uproute = ((w1 >> 17) & 1u) != 0;
  h.usr_tag = static_cast<std::uint16_t>((w1 >> 6) & 0x7FFu);
  h.size_words = static_cast<int>((w1 >> 1) & 0x1Fu);
  return h;
}

void Packet::corrupt_word(int w) {
  if (w == 0) {
    priority =
        priority == Priority::kHigh ? Priority::kLow : Priority::kHigh;
  } else if (w == 1) {
    usr_tag ^= 1u;
  } else {
    payload.at(static_cast<std::size_t>(w - 2)) ^= 0x1u;
  }
}

std::uint32_t Packet::compute_crc() const {
  const std::uint32_t header[3] = {header_word0(), header_word1(),
                                   header_word_ext()};
  // The extended word joins the CRC only when it is on the wire, so
  // paper-shape packets keep the original two-word header CRC.
  const std::size_t nheader = header[2] != 0 ? 3 : 2;
  std::uint32_t c =
      crc32_words(std::span<const std::uint32_t>(header, nheader));
  c = crc32_words(std::span<const std::uint32_t>(payload.data(),
                                                 payload.size()),
                  c);
  return c;
}

}  // namespace hyades::arctic
