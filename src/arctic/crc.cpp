#include "arctic/crc.hpp"

#include <array>

namespace hyades::arctic {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t prev) {
  std::uint32_t c = prev ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table()[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_words(std::span<const std::uint32_t> words,
                          std::uint32_t prev) {
  std::uint32_t c = prev;
  for (std::uint32_t w : words) {
    const std::uint8_t bytes[4] = {
        static_cast<std::uint8_t>(w & 0xFF),
        static_cast<std::uint8_t>((w >> 8) & 0xFF),
        static_cast<std::uint8_t>((w >> 16) & 0xFF),
        static_cast<std::uint8_t>((w >> 24) & 0xFF),
    };
    c = crc32(bytes, c);
  }
  return c;
}

}  // namespace hyades::arctic
