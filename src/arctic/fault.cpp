#include "arctic/fault.hpp"

#include <stdexcept>

#include "arctic/route.hpp"

namespace hyades::arctic {

std::vector<KillEvent> seeded_link_kills(std::uint64_t seed, int count,
                                         int n_levels, int routers_per_level,
                                         Microseconds window_us, int radix) {
  if (radix < kMinShapeRadix || radix > kMaxShapeRadix) {
    throw std::invalid_argument("seeded_link_kills: radix out of range");
  }
  if (n_levels < 2) {
    throw std::invalid_argument(
        "seeded_link_kills: a 1-level tree has no inter-router links");
  }
  // One up link per router keeps every schedule survivable; that caps
  // the number of killable links.
  const int slots = (n_levels - 1) * routers_per_level;
  if (count < 0 || count > slots) {
    throw std::invalid_argument("seeded_link_kills: count out of range");
  }
  std::vector<KillEvent> kills;
  kills.reserve(static_cast<std::size_t>(count));
  std::vector<char> used(static_cast<std::size_t>(slots), 0);
  std::uint64_t probe = 0;
  for (int i = 0; i < count; ++i) {
    // Rejection-sample an unused router slot; pure hash of (seed, probe)
    // so the schedule depends on nothing but the seed.
    int slot = 0;
    for (;;) {
      slot = static_cast<int>(hash_mix(seed, {0x6b696c6cull, probe++}) %
                              static_cast<std::uint64_t>(slots));
      if (used[static_cast<std::size_t>(slot)] == 0) break;
    }
    used[static_cast<std::size_t>(slot)] = 1;
    KillEvent k;
    k.kind = KillEvent::Kind::kLink;
    k.level = slot / routers_per_level;
    k.index = slot % routers_per_level;
    k.port = static_cast<int>(
        hash_mix(seed, {0x706f7274ull, static_cast<std::uint64_t>(i)}) %
        static_cast<std::uint64_t>(radix));
    k.at_us =
        hash_unit(seed, {0x7768656eull, static_cast<std::uint64_t>(i)}) *
        window_us;
    kills.push_back(k);
  }
  return kills;
}

}  // namespace hyades::arctic
