// CRC-32 (IEEE 802.3 polynomial, reflected) used to protect Arctic
// packets.  The paper: "The correctness of the network messages is
// verified at every router stage and at the network endpoints using CRC."
#pragma once

#include <cstdint>
#include <span>

namespace hyades::arctic {

// Incremental interface: crc32(data, prev) continues a previous
// computation; start from kCrcInit (the conventional ~0 seed is handled
// internally, callers just chain return values).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t prev = 0);

// Convenience for 32-bit word streams (Arctic packets are word-oriented).
std::uint32_t crc32_words(std::span<const std::uint32_t> words,
                          std::uint32_t prev = 0);

}  // namespace hyades::arctic
