#include "arctic/route.hpp"

#include <stdexcept>

namespace hyades::arctic {

int levels_for(int endpoints) {
  if (endpoints < 1) throw std::invalid_argument("levels_for: endpoints < 1");
  int n = 1;
  int cap = kRadix;
  while (cap < endpoints) {
    cap *= kRadix;
    ++n;
  }
  if (n > kMaxLevels + 1) {
    throw std::invalid_argument("levels_for: too many endpoints");
  }
  return n;
}

std::uint16_t Route::encode_uproute() const {
  std::uint16_t bits = static_cast<std::uint16_t>(up_levels & 0x7);
  for (int l = 0; l < up_levels; ++l) {
    bits = static_cast<std::uint16_t>(bits |
                                      ((up_ports[l] & 0x3) << (3 + 2 * l)));
  }
  return bits;
}

Route Route::decode(std::uint16_t uproute, std::uint16_t downroute) {
  Route r;
  r.up_levels = uproute & 0x7;
  for (int l = 0; l < r.up_levels && l < kMaxLevels; ++l) {
    r.up_ports[l] = static_cast<std::uint8_t>((uproute >> (3 + 2 * l)) & 0x3);
  }
  r.downroute = downroute;
  return r;
}

Route compute_route(int src, int dst, int n_levels, SplitMix64* rng) {
  Route r;
  // Highest digit position where src and dst differ determines how far up
  // the packet must climb; same-leaf-router traffic (differs only in
  // digit 0, or not at all) never leaves the level-0 router.
  int p = 0;
  for (int l = n_levels - 1; l >= 1; --l) {
    if (digit(src, l) != digit(dst, l)) {
      p = l;
      break;
    }
  }
  r.up_levels = p;
  for (int l = 0; l < p; ++l) {
    // Deterministic default: a pairwise hash of source and destination
    // digits.  Any fixed function of (src, dst) preserves Arctic's FIFO
    // guarantee; folding in several digits spreads distinct flows across
    // the root routers far better than a destination-only choice.
    const int port =
        rng ? static_cast<int>(rng->next_below(kRadix))
            : ((digit(src, 0) + digit(src, l + 1) + digit(dst, l + 1) +
                digit(dst, 0)) &
               (kRadix - 1));
    r.up_ports[static_cast<std::size_t>(l)] = static_cast<std::uint8_t>(port);
  }
  // Down ports: the level-l router on the descent reads bits [2l+1:2l].
  std::uint16_t down = 0;
  for (int l = 0; l <= p; ++l) {
    down = static_cast<std::uint16_t>(down | (digit(dst, l) << (2 * l)));
  }
  r.downroute = down;
  return r;
}

int router_hops(int src, int dst, int n_levels) {
  return compute_route(src, dst, n_levels).router_hops();
}

}  // namespace hyades::arctic
