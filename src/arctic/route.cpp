#include "arctic/route.hpp"

#include <stdexcept>

namespace hyades::arctic {

void FatTreeShape::check() const {
  if (radix < kMinShapeRadix || radix > kMaxShapeRadix) {
    throw std::invalid_argument("FatTreeShape: radix out of range");
  }
  if (levels < 1 || levels > kMaxShapeLevels) {
    throw std::invalid_argument("FatTreeShape: levels out of range");
  }
  // Both route words must fit the width-checked encoding: the uproute
  // word carries the level count plus one port per climbed level, the
  // downroute word one port per level.
  if (count_bits() + port_bits() * (levels - 1) > kRouteWordBits ||
      port_bits() * levels > kRouteWordBits) {
    throw std::invalid_argument("FatTreeShape: route words overflow encoding");
  }
}

int levels_for(int endpoints) {
  if (endpoints < 1) throw std::invalid_argument("levels_for: endpoints < 1");
  int n = 1;
  int cap = kRadix;
  while (cap < endpoints) {
    cap *= kRadix;
    ++n;
  }
  if (n > kMaxLevels + 1) {
    throw std::invalid_argument("levels_for: too many endpoints");
  }
  return n;
}

int levels_for(int endpoints, int radix) {
  if (endpoints < 1) throw std::invalid_argument("levels_for: endpoints < 1");
  if (radix < kMinShapeRadix || radix > kMaxShapeRadix) {
    throw std::invalid_argument("levels_for: radix out of range");
  }
  int n = 1;
  long long cap = radix;
  while (cap < endpoints) {
    cap *= radix;
    ++n;
    if (n > kMaxShapeLevels) {
      throw std::invalid_argument("levels_for: too many endpoints");
    }
  }
  const FatTreeShape shape{radix, n};
  shape.check();
  return n;
}

FatTreeShape shape_for(int endpoints, int radix) {
  return FatTreeShape{radix, levels_for(endpoints, radix)};
}

std::uint32_t Route::encode_uproute() const {
  const std::uint32_t pmask = (1u << port_bits) - 1u;
  const std::uint32_t cmask = (1u << count_bits) - 1u;
  std::uint32_t bits = static_cast<std::uint32_t>(up_levels) & cmask;
  for (int l = 0; l < up_levels && l < kMaxShapeLevels; ++l) {
    bits |= (static_cast<std::uint32_t>(up_ports[static_cast<std::size_t>(l)]) &
             pmask)
            << (count_bits + port_bits * l);
  }
  return bits;
}

Route Route::decode(std::uint32_t uproute, std::uint32_t downroute) {
  Route r;  // paper layout: the default 2-bit ports / 3-bit count
  r.up_levels = static_cast<int>(uproute & 0x7u);
  for (int l = 0; l < r.up_levels && l < kMaxLevels; ++l) {
    r.up_ports[static_cast<std::size_t>(l)] =
        static_cast<std::uint8_t>((uproute >> (3 + 2 * l)) & 0x3u);
  }
  r.downroute = downroute;
  return r;
}

Route Route::decode(std::uint32_t uproute, std::uint32_t downroute,
                    const FatTreeShape& shape) {
  Route r;
  r.port_bits = static_cast<std::uint8_t>(shape.port_bits());
  r.count_bits = static_cast<std::uint8_t>(shape.count_bits());
  const std::uint32_t pmask = (1u << r.port_bits) - 1u;
  const std::uint32_t cmask = (1u << r.count_bits) - 1u;
  r.up_levels = static_cast<int>(uproute & cmask);
  for (int l = 0; l < r.up_levels && l < kMaxShapeLevels; ++l) {
    r.up_ports[static_cast<std::size_t>(l)] = static_cast<std::uint8_t>(
        (uproute >> (r.count_bits + r.port_bits * l)) & pmask);
  }
  r.downroute = downroute;
  return r;
}

Route compute_route(int src, int dst, const FatTreeShape& shape,
                    SplitMix64* rng) {
  Route r;
  r.port_bits = static_cast<std::uint8_t>(shape.port_bits());
  r.count_bits = static_cast<std::uint8_t>(shape.count_bits());
  // Highest digit position where src and dst differ determines how far up
  // the packet must climb; same-leaf-router traffic (differs only in
  // digit 0, or not at all) never leaves the level-0 router.
  int p = 0;
  for (int l = shape.levels - 1; l >= 1; --l) {
    if (shape.digit(src, l) != shape.digit(dst, l)) {
      p = l;
      break;
    }
  }
  r.up_levels = p;
  for (int l = 0; l < p; ++l) {
    // Deterministic default: a pairwise hash of source and destination
    // digits.  Any fixed function of (src, dst) preserves Arctic's FIFO
    // guarantee; folding in several digits spreads distinct flows across
    // the root routers far better than a destination-only choice.
    const int port =
        rng ? static_cast<int>(
                  rng->next_below(static_cast<std::uint64_t>(shape.radix)))
            : ((shape.digit(src, 0) + shape.digit(src, l + 1) +
                shape.digit(dst, l + 1) + shape.digit(dst, 0)) %
               shape.radix);
    r.up_ports[static_cast<std::size_t>(l)] = static_cast<std::uint8_t>(port);
  }
  // Down ports: the level-l router on the descent reads port_bits at
  // bit offset port_bits*l.
  std::uint32_t down = 0;
  for (int l = 0; l <= p; ++l) {
    down |= static_cast<std::uint32_t>(shape.digit(dst, l))
            << (r.port_bits * l);
  }
  r.downroute = down;
  return r;
}

Route compute_route(int src, int dst, int n_levels, SplitMix64* rng) {
  return compute_route(src, dst, FatTreeShape{kRadix, n_levels}, rng);
}

int router_hops(int src, int dst, const FatTreeShape& shape) {
  return compute_route(src, dst, shape).router_hops();
}

int router_hops(int src, int dst, int n_levels) {
  return router_hops(src, dst, FatTreeShape{kRadix, n_levels});
}

TopologyHealth::TopologyHealth(int n_levels, int routers_per_level)
    : levels_(n_levels),
      routers_per_level_(routers_per_level),
      router_dead_(static_cast<std::size_t>(n_levels * routers_per_level), 0),
      link_dead_(
          static_cast<std::size_t>(n_levels * routers_per_level * kRadix), 0) {
  if (n_levels < 1 || routers_per_level < 1) {
    throw std::invalid_argument("TopologyHealth: bad shape");
  }
}

TopologyHealth::TopologyHealth(const FatTreeShape& shape)
    : levels_(shape.levels),
      routers_per_level_(shape.routers_per_level()),
      radix_(shape.radix),
      router_dead_(
          static_cast<std::size_t>(shape.levels * shape.routers_per_level()),
          0),
      link_dead_(static_cast<std::size_t>(shape.levels *
                                          shape.routers_per_level() *
                                          shape.radix),
                 0) {
  shape.check();
}

void TopologyHealth::kill_router(int level, int index) {
  if (level < 0 || level >= levels_ || index < 0 ||
      index >= routers_per_level_) {
    throw std::out_of_range("TopologyHealth::kill_router: bad coordinates");
  }
  char& d =
      router_dead_[static_cast<std::size_t>(level * routers_per_level_ + index)];
  if (d == 0) {
    d = 1;
    ++dead_routers_;
  }
}

void TopologyHealth::kill_up_link(int level, int index, int up_port) {
  if (level < 0 || level >= levels_ - 1 || index < 0 ||
      index >= routers_per_level_ || up_port < 0 || up_port >= radix_) {
    throw std::out_of_range("TopologyHealth::kill_up_link: bad coordinates");
  }
  char& d = link_dead_[static_cast<std::size_t>(
      (level * routers_per_level_ + index) * radix_ + up_port)];
  if (d == 0) {
    d = 1;
    ++dead_links_;
  }
}

namespace {

// compute_route's deterministic up-port choice at level l.
int default_up_port(int src, int dst, int l, const FatTreeShape& s) {
  return (s.digit(src, 0) + s.digit(src, l + 1) + s.digit(dst, l + 1) +
          s.digit(dst, 0)) %
         s.radix;
}

// The descent from apex router (k, apex) toward dst is forced: the
// level-l router must take down port digit(dst, l).  True when every
// router and cable on the way down is live.  A down hop from (l, r)
// to (l-1, below) rides the same physical cable as `below`'s up port
// digit(r, l-1), which is how link kills are addressed.
bool descent_clear(int apex, int k, int dst, const FatTreeShape& s,
                   const TopologyHealth& h) {
  int r = apex;
  for (int l = k; l >= 1; --l) {
    const int below = s.with_digit(r, l - 1, s.digit(dst, l));
    if (h.up_link_dead(l - 1, below, s.digit(r, l - 1))) return false;
    if (h.router_dead(l - 1, below)) return false;
    r = below;
  }
  return true;
}

// Depth-first search over the up-port choice vector for climb height k.
// At each level the candidates are probed in deterministic fallback
// order: the default (or RNG-drawn) preference first, then +1, +2, ...
// mod radix -- so the route picked is a pure function of (src, dst,
// dead set, preference vector).
bool climb(int dst, int k, int level, int r,
           std::array<std::uint8_t, kMaxShapeLevels>& up, const int* pref,
           const FatTreeShape& s, const TopologyHealth& h) {
  if (level == k) return descent_clear(r, k, dst, s, h);
  for (int j = 0; j < s.radix; ++j) {
    const int u = (pref[level] + j) % s.radix;
    if (h.up_link_dead(level, r, u)) continue;
    const int above = s.with_digit(r, level, u);
    if (h.router_dead(level + 1, above)) continue;
    up[static_cast<std::size_t>(level)] = static_cast<std::uint8_t>(u);
    if (climb(dst, k, level + 1, above, up, pref, s, h)) return true;
  }
  return false;
}

}  // namespace

RoutedPath compute_route_degraded(int src, int dst, const FatTreeShape& shape,
                                  const TopologyHealth& health,
                                  SplitMix64* rng) {
  if (health.radix() != shape.radix || health.levels() != shape.levels) {
    throw std::invalid_argument(
        "compute_route_degraded: health/shape mismatch");
  }
  // Minimal climb height, exactly as compute_route finds it.
  int p = 0;
  for (int l = shape.levels - 1; l >= 1; --l) {
    if (shape.digit(src, l) != shape.digit(dst, l)) {
      p = l;
      break;
    }
  }

  // Per-level starting preference: compute_route's own choice, so a
  // fully healthy search reproduces its route bit for bit.  In
  // random-uproute mode only the minimal-climb levels draw from the
  // stream (the same p draws compute_route makes), keeping stream
  // consumption independent of the dead set; over-climb levels fall
  // back to the deterministic pairwise hash.
  std::array<int, kMaxShapeLevels + 1> pref{};
  for (int l = 0; l < shape.levels - 1; ++l) {
    pref[static_cast<std::size_t>(l)] =
        (l < p && rng != nullptr)
            ? static_cast<int>(
                  rng->next_below(static_cast<std::uint64_t>(shape.radix)))
            : default_up_port(src, dst, l, shape);
  }

  RoutedPath out;
  out.route.port_bits = static_cast<std::uint8_t>(shape.port_bits());
  out.route.count_bits = static_cast<std::uint8_t>(shape.count_bits());
  const int src_leaf = shape.leaf_of(src);
  const int dst_leaf = shape.leaf_of(dst);
  if (health.router_dead(0, src_leaf) || health.router_dead(0, dst_leaf)) {
    return out;  // an endpoint's leaf router is gone: partitioned
  }

  // Try the minimal climb first, then exploit the fat tree's extra
  // diversity by over-climbing one level at a time.
  for (int k = p; k <= shape.levels - 1; ++k) {
    std::array<std::uint8_t, kMaxShapeLevels> up{};
    if (!climb(dst, k, 0, src_leaf, up, pref.data(), shape, health)) continue;
    out.status = RouteStatus::kOk;
    out.route.up_levels = k;
    out.route.up_ports = up;
    std::uint32_t down = 0;
    for (int l = 0; l <= k; ++l) {
      down |= static_cast<std::uint32_t>(shape.digit(dst, l))
              << (out.route.port_bits * l);
    }
    out.route.downroute = down;
    return out;
  }
  return out;
}

RoutedPath compute_route_degraded(int src, int dst, int n_levels,
                                  const TopologyHealth& health,
                                  SplitMix64* rng) {
  return compute_route_degraded(src, dst, FatTreeShape{kRadix, n_levels},
                                health, rng);
}

bool route_survives(int src, int dst, const Route& route,
                    const TopologyHealth& health) {
  const FatTreeShape shape{health.radix(), health.levels()};
  int r = shape.leaf_of(src);
  if (health.router_dead(0, r)) return false;
  for (int l = 0; l < route.up_levels; ++l) {
    const int u = route.up_ports[static_cast<std::size_t>(l)];
    if (health.up_link_dead(l, r, u)) return false;
    r = shape.with_digit(r, l, u);
    if (health.router_dead(l + 1, r)) return false;
  }
  for (int l = route.up_levels; l >= 1; --l) {
    const int below = shape.with_digit(r, l - 1, route.down_port(l));
    if (health.up_link_dead(l - 1, below, shape.digit(r, l - 1))) return false;
    if (health.router_dead(l - 1, below)) return false;
    r = below;
  }
  return r == shape.leaf_of(dst) && route.down_port(0) == shape.digit(dst, 0);
}

}  // namespace hyades::arctic
