#include "arctic/route.hpp"

#include <stdexcept>

namespace hyades::arctic {

int levels_for(int endpoints) {
  if (endpoints < 1) throw std::invalid_argument("levels_for: endpoints < 1");
  int n = 1;
  int cap = kRadix;
  while (cap < endpoints) {
    cap *= kRadix;
    ++n;
  }
  if (n > kMaxLevels + 1) {
    throw std::invalid_argument("levels_for: too many endpoints");
  }
  return n;
}

std::uint16_t Route::encode_uproute() const {
  std::uint16_t bits = static_cast<std::uint16_t>(up_levels & 0x7);
  for (int l = 0; l < up_levels; ++l) {
    bits = static_cast<std::uint16_t>(
        bits | ((up_ports[static_cast<std::size_t>(l)] & 0x3) << (3 + 2 * l)));
  }
  return bits;
}

Route Route::decode(std::uint16_t uproute, std::uint16_t downroute) {
  Route r;
  r.up_levels = uproute & 0x7;
  for (int l = 0; l < r.up_levels && l < kMaxLevels; ++l) {
    r.up_ports[static_cast<std::size_t>(l)] =
        static_cast<std::uint8_t>((uproute >> (3 + 2 * l)) & 0x3);
  }
  r.downroute = downroute;
  return r;
}

Route compute_route(int src, int dst, int n_levels, SplitMix64* rng) {
  Route r;
  // Highest digit position where src and dst differ determines how far up
  // the packet must climb; same-leaf-router traffic (differs only in
  // digit 0, or not at all) never leaves the level-0 router.
  int p = 0;
  for (int l = n_levels - 1; l >= 1; --l) {
    if (digit(src, l) != digit(dst, l)) {
      p = l;
      break;
    }
  }
  r.up_levels = p;
  for (int l = 0; l < p; ++l) {
    // Deterministic default: a pairwise hash of source and destination
    // digits.  Any fixed function of (src, dst) preserves Arctic's FIFO
    // guarantee; folding in several digits spreads distinct flows across
    // the root routers far better than a destination-only choice.
    const int port =
        rng ? static_cast<int>(rng->next_below(kRadix))
            : ((digit(src, 0) + digit(src, l + 1) + digit(dst, l + 1) +
                digit(dst, 0)) &
               (kRadix - 1));
    r.up_ports[static_cast<std::size_t>(l)] = static_cast<std::uint8_t>(port);
  }
  // Down ports: the level-l router on the descent reads bits [2l+1:2l].
  std::uint16_t down = 0;
  for (int l = 0; l <= p; ++l) {
    down = static_cast<std::uint16_t>(down | (digit(dst, l) << (2 * l)));
  }
  r.downroute = down;
  return r;
}

int router_hops(int src, int dst, int n_levels) {
  return compute_route(src, dst, n_levels).router_hops();
}

TopologyHealth::TopologyHealth(int n_levels, int routers_per_level)
    : levels_(n_levels),
      routers_per_level_(routers_per_level),
      router_dead_(static_cast<std::size_t>(n_levels * routers_per_level), 0),
      link_dead_(
          static_cast<std::size_t>(n_levels * routers_per_level * kRadix), 0) {
  if (n_levels < 1 || routers_per_level < 1) {
    throw std::invalid_argument("TopologyHealth: bad shape");
  }
}

void TopologyHealth::kill_router(int level, int index) {
  if (level < 0 || level >= levels_ || index < 0 ||
      index >= routers_per_level_) {
    throw std::out_of_range("TopologyHealth::kill_router: bad coordinates");
  }
  char& d =
      router_dead_[static_cast<std::size_t>(level * routers_per_level_ + index)];
  if (d == 0) {
    d = 1;
    ++dead_routers_;
  }
}

void TopologyHealth::kill_up_link(int level, int index, int up_port) {
  if (level < 0 || level >= levels_ - 1 || index < 0 ||
      index >= routers_per_level_ || up_port < 0 || up_port >= kRadix) {
    throw std::out_of_range("TopologyHealth::kill_up_link: bad coordinates");
  }
  char& d = link_dead_[static_cast<std::size_t>(
      (level * routers_per_level_ + index) * kRadix + up_port)];
  if (d == 0) {
    d = 1;
    ++dead_links_;
  }
}

namespace {

// Replace base-4 digit `pos` of `value` with `d`.
int with_digit(int value, int pos, int d) {
  const int mask = 3 << (2 * pos);
  return (value & ~mask) | (d << (2 * pos));
}

// compute_route's deterministic up-port choice at level l.
int default_up_port(int src, int dst, int l) {
  return (digit(src, 0) + digit(src, l + 1) + digit(dst, l + 1) +
          digit(dst, 0)) &
         (kRadix - 1);
}

// The descent from apex router (k, apex) toward dst is forced: the
// level-l router must take down port digit(dst, l).  True when every
// router and cable on the way down is live.  A down hop from (l, r)
// to (l-1, below) rides the same physical cable as `below`'s up port
// digit(r, l-1), which is how link kills are addressed.
bool descent_clear(int apex, int k, int dst, const TopologyHealth& h) {
  int r = apex;
  for (int l = k; l >= 1; --l) {
    const int below = with_digit(r, l - 1, digit(dst, l));
    if (h.up_link_dead(l - 1, below, digit(r, l - 1))) return false;
    if (h.router_dead(l - 1, below)) return false;
    r = below;
  }
  return true;
}

// Depth-first search over the up-port choice vector for climb height k.
// At each level the candidates are probed in deterministic fallback
// order: the default (or RNG-drawn) preference first, then +1, +2, +3
// mod 4 -- so the route picked is a pure function of (src, dst, dead
// set, preference vector).
bool climb(int dst, int k, int level, int r,
           std::array<std::uint8_t, kMaxLevels>& up, const int* pref,
           const TopologyHealth& h) {
  if (level == k) return descent_clear(r, k, dst, h);
  for (int j = 0; j < kRadix; ++j) {
    const int u = (pref[level] + j) & (kRadix - 1);
    if (h.up_link_dead(level, r, u)) continue;
    const int above = with_digit(r, level, u);
    if (h.router_dead(level + 1, above)) continue;
    up[static_cast<std::size_t>(level)] = static_cast<std::uint8_t>(u);
    if (climb(dst, k, level + 1, above, up, pref, h)) return true;
  }
  return false;
}

}  // namespace

RoutedPath compute_route_degraded(int src, int dst, int n_levels,
                                  const TopologyHealth& health,
                                  SplitMix64* rng) {
  // Minimal climb height, exactly as compute_route finds it.
  int p = 0;
  for (int l = n_levels - 1; l >= 1; --l) {
    if (digit(src, l) != digit(dst, l)) {
      p = l;
      break;
    }
  }

  // Per-level starting preference: compute_route's own choice, so a
  // fully healthy search reproduces its route bit for bit.  In
  // random-uproute mode only the minimal-climb levels draw from the
  // stream (the same p draws compute_route makes), keeping stream
  // consumption independent of the dead set; over-climb levels fall
  // back to the deterministic pairwise hash.
  std::array<int, kMaxLevels + 1> pref{};
  for (int l = 0; l < n_levels - 1; ++l) {
    pref[static_cast<std::size_t>(l)] =
        (l < p && rng != nullptr)
            ? static_cast<int>(rng->next_below(kRadix))
            : default_up_port(src, dst, l);
  }

  RoutedPath out;
  const int src_leaf = src >> 2;
  const int dst_leaf = dst >> 2;
  if (health.router_dead(0, src_leaf) || health.router_dead(0, dst_leaf)) {
    return out;  // an endpoint's leaf router is gone: partitioned
  }

  // Try the minimal climb first, then exploit the fat tree's extra
  // diversity by over-climbing one level at a time.
  for (int k = p; k <= n_levels - 1; ++k) {
    std::array<std::uint8_t, kMaxLevels> up{};
    if (!climb(dst, k, 0, src_leaf, up, pref.data(), health)) continue;
    out.status = RouteStatus::kOk;
    out.route.up_levels = k;
    out.route.up_ports = up;
    std::uint16_t down = 0;
    for (int l = 0; l <= k; ++l) {
      down = static_cast<std::uint16_t>(down | (digit(dst, l) << (2 * l)));
    }
    out.route.downroute = down;
    return out;
  }
  return out;
}

bool route_survives(int src, int dst, const Route& route,
                    const TopologyHealth& health) {
  int r = src >> 2;
  if (health.router_dead(0, r)) return false;
  for (int l = 0; l < route.up_levels; ++l) {
    const int u = route.up_ports[static_cast<std::size_t>(l)];
    if (health.up_link_dead(l, r, u)) return false;
    r = with_digit(r, l, u);
    if (health.router_dead(l + 1, r)) return false;
  }
  for (int l = route.up_levels; l >= 1; --l) {
    const int below = with_digit(r, l - 1, route.down_port(l));
    if (health.up_link_dead(l - 1, below, digit(r, l - 1))) return false;
    if (health.router_dead(l - 1, below)) return false;
    r = below;
  }
  return r == (dst >> 2) && route.down_port(0) == digit(dst, 0);
}

}  // namespace hyades::arctic
