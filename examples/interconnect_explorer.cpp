// Interconnect explorer: the paper's Section 5.4 analysis as a tool.
//
// Given a model configuration, computes the Potential Floating-Point
// Performance (Pfpp) of each interconnect choice and says whether the
// communication substrate or the processors bound the application --
// "if Pfpp is significantly greater than current processor compute
// performance then straight-forward investments in faster or more
// processors are a viable route ... Conversely ... there is little point
// in investing in hardware that only improves compute performance."
//
//   ./interconnect_explorer [nz] [fps_mflops]
#include <iostream>

#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"
#include "perf/calibrate.hpp"
#include "perf/perf_model.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hyades;
  constexpr const char* kUsage = "interconnect_explorer [nz] [fps_mflops]";
  const int nz = argc > 1 ? support::checked_int(argv[1], "nz", kUsage) : 10;
  const double fps =
      argc > 2 ? support::checked_double(argv[2], "fps_mflops", kUsage, 1.0)
               : 50.0;

  std::cout << "Configuration: 128x64x" << nz
            << " grid, 16 processors on 8 SMPs, processor sustains "
            << fps << " MFlop/s\n";

  const net::ArcticModel arctic;
  const net::EthernetModel fe = net::fast_ethernet();
  const net::EthernetModel ge = net::gigabit_ethernet();
  const net::EthernetModel hpvm = net::hpvm_myrinet();
  const net::Interconnect* nets[] = {&fe, &ge, &hpvm, &arctic};

  Table t({"network", "Pfpp,ps (MF/s)", "Pfpp,ds (MF/s)", "verdict"});
  for (const net::Interconnect* n : nets) {
    gcm::ModelConfig cfg = gcm::atmosphere_preset(1, 1);
    cfg.nz = nz;

    perf::MachineShape shape{8, 2};
    const perf::PrimitiveCosts c = perf::measure_primitives(*n, shape, 4);
    perf::PerfParams p = perf::paper_atmosphere();
    p.ps.fps_mflops = fps;
    p.ps.nxyz = 128.0 * 64.0 * nz / 16.0;
    p.ps.texchxyz = c.texchxyz_atmos * nz / 10.0;  // scale with depth
    p.ds.tgsum = c.tgsum;
    p.ds.texchxy = c.texchxy;

    const double ps = perf::pfpp_ps(p.ps);
    const double ds = perf::pfpp_ds(p.ds);
    const char* verdict =
        (ps > 2 * fps && ds > p.ds.fds_mflops)
            ? "buy faster processors"
            : (ps > fps ? "viable for coarse grain only"
                        : "interconnect-bound everywhere");
    t.add_row({n->name(), Table::fmt(ps, 1), Table::fmt(ds, 1), verdict});
  }
  t.print(std::cout,
          "Pfpp = per-processor MFlop/s if computation took zero time");
  std::cout << "\nDS-phase budget (Section 5.4): tgsum + texchxy must stay "
               "under ~306 us to keep Pfpp,ds at 60 MFlop/s.\n";
  return 0;
}
