// Production-run workflow: periodic checkpoints, restart, and a
// virtual-time communication trace -- the operational features a
// dedicated "personal supercomputer" runs with (Section 6: the machine
// is dedicated to a single research endeavor, so runs span weeks and
// must survive interruptions).
//
//   ./production_run [segments] [steps_per_segment] [outdir]
//
// Each segment restarts from the previous segment's checkpoint, exactly
// as a queue of week-long jobs would, and the final segment writes a
// per-rank timeline CSV of ps/ds phases, exchanges and global sums.
//
// For the *campaign* version of this pattern -- many queued jobs with
// priorities, a cluster pool, and result dedup -- see ensemble_farm.
#include <filesystem>
#include <iostream>
#include <mutex>
#include <vector>

#include "cluster/report.hpp"
#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hyades;
  constexpr const char* kUsage =
      "production_run [segments] [steps_per_segment] [outdir]";
  const int segments =
      argc > 1 ? support::checked_int(argv[1], "segments", kUsage) : 3;
  const int steps =
      argc > 2 ? support::checked_int(argv[2], "steps_per_segment", kUsage) : 8;
  const std::string outdir = argc > 3 ? argv[3] : "production_output";
  std::filesystem::create_directories(outdir);
  const std::string ckpt = outdir + "/checkpoint";

  const net::ArcticModel arctic;
  cluster::MachineConfig machine;
  machine.smp_count = 8;
  machine.procs_per_smp = 2;
  machine.interconnect = &arctic;

  const gcm::ModelConfig cfg = gcm::ocean_preset(4, 4);

  for (int seg = 0; seg < segments; ++seg) {
    // A fresh Runtime per segment: each one stands in for a separate
    // job launch on the dedicated machine.
    cluster::Runtime cluster(machine);
    std::mutex io;
    std::vector<cluster::Tracer> tracers(
        static_cast<std::size_t>(machine.nranks()));
    cluster.run([&](cluster::RankContext& ctx) {
      ctx.set_tracer(&tracers[static_cast<std::size_t>(ctx.rank())]);
      comm::Comm comm(ctx);
      gcm::Model model(cfg, comm);
      if (seg == 0) {
        model.initialize();
      } else {
        model.load_checkpoint(ckpt);
      }
      for (int s = 0; s < steps; ++s) {
        if (!model.step().cg_converged) {
          throw std::runtime_error("solver failed");
        }
      }
      model.save_checkpoint(ckpt);
      const double ke = model.kinetic_energy();
      if (comm.group_rank() == 0) {
        std::lock_guard<std::mutex> lock(io);
        std::cout << "segment " << seg << ": resumed at step "
                  << model.state().step - steps << ", ran " << steps
                  << " steps, KE = " << Table::fmt(ke, 3)
                  << " J, exchange time "
                  << Table::fmt(
                         tracers[static_cast<std::size_t>(ctx.rank())].total(
                             "exchange") /
                             1000.0,
                         1)
                  << " ms, gsum time "
                  << Table::fmt(
                         tracers[static_cast<std::size_t>(ctx.rank())].total(
                             "gsum") /
                             1000.0,
                         1)
                  << " ms\n";
      }
    });
    if (seg + 1 == segments) {
      std::vector<const cluster::Tracer*> ptrs;
      ptrs.reserve(tracers.size());
      for (const auto& t : tracers) ptrs.push_back(&t);
      cluster::write_trace_csv(outdir + "/timeline.csv", ptrs);
      cluster::write_trace_json(outdir + "/timeline.trace.json", ptrs,
                                machine.procs_per_smp);
      std::cout << "virtual-time comm timeline written to " << outdir
                << "/timeline.csv ("
                << tracers[0].events().size() * tracers.size()
                << "-ish events) and " << outdir
                << "/timeline.trace.json (Perfetto / chrome://tracing)\n";
      print_wait_attribution(
          std::cout,
          cluster::wait_attribution(ptrs, cluster.accounting()),
          static_cast<double>(steps));
    }
  }
  std::cout << "checkpoints in " << outdir << "/checkpoint.rank*\n";
  return 0;
}
