// Quickstart: the smallest useful Hyades program.
//
// Builds a 4-SMP virtual cluster on the Arctic interconnect model, runs
// a coarse wind-driven ocean for a simulated day, and prints global
// diagnostics plus an ASCII map of the sea-surface temperature.
//
//   ./quickstart [steps] [--trace out.trace.json]
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/report.hpp"
#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "gcm/output.hpp"
#include "net/arctic_model.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hyades;
  constexpr const char* kUsage = "quickstart [steps] [--trace out.trace.json]";
  int steps = 216;  // ~1 day at dt=400s
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      steps = support::checked_int(argv[i], "steps", kUsage);
    }
  }

  // 1. Describe the machine: 4 SMPs, one processor each, Arctic fabric.
  const net::ArcticModel arctic;
  cluster::MachineConfig machine;
  machine.smp_count = 4;
  machine.procs_per_smp = 1;
  machine.interconnect = &arctic;
  cluster::Runtime cluster(machine);

  // 2. Describe the model: a 32x16x5 ocean box, one tile per rank.
  gcm::ModelConfig cfg;
  cfg.isomorph = gcm::Isomorph::kOcean;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 5;
  cfg.px = 2;
  cfg.py = 2;
  cfg.halo = 2;
  cfg.dt = 400.0;
  cfg.visc_h = 5.0e5;
  cfg.diff_h = 5.0e4;
  cfg.validate();

  // 3. Run: every rank executes the same program (SPMD).
  std::mutex io;
  std::vector<cluster::Tracer> tracers(
      trace_out ? static_cast<std::size_t>(machine.nranks()) : 0);
  cluster.run([&](cluster::RankContext& ctx) {
    if (trace_out != nullptr) {
      ctx.set_tracer(&tracers[static_cast<std::size_t>(ctx.rank())]);
    }
    comm::Comm comm(ctx);
    gcm::Model model(cfg, comm);
    model.initialize();
    for (int s = 0; s < steps; ++s) {
      const gcm::StepStats st = model.step();
      if (!st.cg_converged) {
        throw std::runtime_error("pressure solver failed to converge");
      }
    }
    // Collective diagnostics: identical on every rank.
    const double ke = model.kinetic_energy();
    const double sst = model.mean_theta();
    const double cfl = model.max_cfl();
    const double div = model.max_surface_divergence();
    const auto field = model.gather_theta(0);

    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(io);
      std::cout << "ran " << steps << " steps (" << steps * cfg.dt / 3600.0
                << " simulated hours) on " << ctx.nranks() << " processors\n";
      Table t({"diagnostic", "value"});
      t.add_row({"kinetic energy (J)", Table::fmt(ke, 3)});
      t.add_row({"mean temperature (degC)", Table::fmt(sst, 4)});
      t.add_row({"max CFL", Table::fmt(cfl, 4)});
      t.add_row({"max residual divergence (1/s)", Table::fmt(div, 12)});
      t.add_row({"virtual wall clock (s)",
                 Table::fmt(us_to_seconds(ctx.clock().now()), 3)});
      t.print(std::cout);
      std::cout << "\nsea-surface temperature:\n"
                << gcm::ascii_map(field, 64, 16);
    }
  });

  if (trace_out != nullptr) {
    std::vector<const cluster::Tracer*> ptrs;
    ptrs.reserve(tracers.size());
    for (const auto& t : tracers) ptrs.push_back(&t);
    cluster::write_trace_json(trace_out, ptrs, machine.procs_per_smp);
    std::cout << "\nwrote Chrome trace (ui.perfetto.dev): " << trace_out
              << "\n";
    print_wait_attribution(
        std::cout, cluster::wait_attribution(ptrs, cluster.accounting()),
        static_cast<double>(steps));
  }
  return 0;
}
