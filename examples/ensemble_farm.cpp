// The ensemble farm: campaign-mode operation of the personal
// supercomputer.  Where production_run replays one long job segment by
// segment, this driver runs the *campaign*: a queue of
// perturbed-parameter gyre members, a high-priority validation member
// that overtakes the bulk sweep, a wind-stress what-if, and a
// fault-sweep member that burns its restart budget and fails -- all
// scheduled across a pool of simulated clusters on the farm's
// deterministic virtual job clock, with duplicate submissions served
// from the result cache.
//
//   ./ensemble_farm [members] [steps] [clusters]
//
// Everything below is a pure function of the submitted queue: run it
// twice and the campaign ledger (KE in hexfloat, schedule stamps,
// totals) is byte-identical.
#include <iostream>

#include "farm/farm.hpp"
#include "gcm/config.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

namespace {

// A light 16x8x4 closed-basin ocean on 2x2 tiles: one campaign member
// costs ~a second of host time, so a whole queue drains quickly.
hyades::gcm::ModelConfig basin_config() {
  hyades::gcm::ModelConfig c;
  c.isomorph = hyades::gcm::Isomorph::kOcean;
  c.nx = 16;
  c.ny = 8;
  c.nz = 4;
  c.px = 2;
  c.py = 2;
  c.dt = 400.0;
  c.total_depth = 4000.0;
  c.visc_h = 1.0e6;  // mixing scaled to the coarse grid
  c.diff_h = 1.0e5;
  c.topography = hyades::gcm::ModelConfig::Topography::kBasin;
  c.wind_tau0 = 0.15;
  c.validate();
  return c;
}

hyades::farm::JobSpec gyre_member(const std::string& name, std::uint64_t seed,
                                  int steps, int priority = 0) {
  hyades::farm::JobSpec s;
  s.name = name;
  s.priority = priority;
  s.seed = seed;
  s.steps = steps;
  s.machine = {4, 1};
  s.config = basin_config();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyades;
  constexpr const char* kUsage = "ensemble_farm [members] [steps] [clusters]";
  const int members =
      argc > 1 ? support::checked_int(argv[1], "members", kUsage, 1, 64) : 4;
  const int steps =
      argc > 2 ? support::checked_int(argv[2], "steps", kUsage, 1, 1000) : 6;
  const int clusters =
      argc > 3 ? support::checked_int(argv[3], "clusters", kUsage, 1, 16) : 2;

  farm::FarmConfig fc;
  fc.clusters = clusters;
  // Admission control sized to the planned wave: the over-capacity
  // probe below is refused, not silently queued forever.
  fc.max_pending = members + 4;
  farm::Farm f(fc);

  std::cout << "ensemble farm: " << clusters << "-cluster pool, "
            << members << " perturbed members x " << steps
            << " steps, admission cap " << fc.max_pending << "\n\n";

  // Wave 1: the bulk ensemble (one seed per member), a validation
  // member that must overtake it, a wind-stress what-if, a doomed
  // fault-sweep member, and one submit past the admission cap.
  for (int m = 0; m < members; ++m) {
    f.submit(gyre_member("member-" + std::to_string(m),
                         static_cast<std::uint64_t>(100 + m), steps));
  }
  f.submit(gyre_member("validation", 100, steps, /*priority=*/5));

  farm::JobSpec what_if = gyre_member("wind-what-if", 100, steps);
  what_if.config.wind_tau0 = 0.25;  // a different computation: new hash
  f.submit(what_if);

  farm::JobSpec doomed = gyre_member("fault-sweep", 100, steps);
  doomed.max_restarts = 1;
  for (int epoch = 0; epoch <= doomed.max_restarts + 1; ++epoch) {
    doomed.faults.node_kills.push_back({/*rank=*/1, /*at_us=*/50.0, epoch});
  }
  f.submit(doomed);

  // The same single-kill adversity handled elastically: the survivors
  // adopt rank 1's tile from its durable checkpoint instead of the
  // whole world restarting (ledger: recovery=migrate, migr=1, same KE
  // bits as a failure-free member).
  farm::JobSpec elastic = gyre_member("fault-migrate", 100, steps);
  elastic.recovery = gcm::RecoveryMode::kMigrate;
  elastic.faults.node_kills.push_back({/*rank=*/1, /*at_us=*/50.0,
                                       /*epoch=*/0});
  f.submit(elastic);

  const int probe =
      f.submit(gyre_member("over-capacity-probe", 100, steps));
  std::cout << "over-capacity probe: "
            << farm::to_string(f.job(probe).status) << " ("
            << f.job(probe).error << ")\n\n";

  f.run_until_drained();

  // Wave 2: resubmit the whole bulk ensemble -- every member is served
  // from the result cache for zero additional simulated steps -- plus
  // the probe, which is admitted now that the queue drained (and, being
  // identical to member-0's computation, is itself a cache hit).
  for (int m = 0; m < members; ++m) {
    f.submit(gyre_member("member-" + std::to_string(m) + "-rerun",
                         static_cast<std::uint64_t>(100 + m), steps));
  }
  f.submit(gyre_member("probe-resubmit", 100, steps));
  f.run_until_drained();

  std::cout << "\n" << f.format_summary() << "\n";

  Table mt({"counter", "value"});
  for (const metrics::Registry::Entry& e : f.campaign_metrics().entries()) {
    mt.add_row({e.name, Table::fmt(e.value, 1)});
  }
  mt.print(std::cout, "campaign cost rollup (farm.* counters)");

  const farm::Farm::CampaignSummary s = f.summary();
  std::cout << "\nnotes:\n"
            << "  validation overtook the bulk sweep (priority 5 vs 0); the\n"
            << "  fault-sweep member exhausted its restart budget and failed\n"
            << "  without wedging the queue; the fault-migrate member\n"
            << "  survived the same kill by live tile migration ("
            << s.migrations << " migration(s)); " << s.cache_hits
            << " duplicate submissions were served from cache, saving "
            << s.steps_saved << " simulated steps.\n"
            << "  rerun this command: the ledger above is byte-identical.\n";
  return 0;
}
