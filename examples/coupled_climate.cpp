// The paper's headline scenario (Section 5): a coupled ocean-atmosphere
// climate simulation at 2.8125-degree resolution on the full Hyades
// machine -- sixteen two-way SMPs, each isomorph on sixteen processors
// over eight SMPs, boundary conditions exchanged periodically.
//
// Outputs Figure-9-analog fields as PGM images + CSVs (ocean surface
// temperature and current speed; atmospheric zonal-wind level) and
// prints the combined sustained floating-point performance.
//
//   ./coupled_climate [steps] [couple_every] [outdir]
#include <filesystem>
#include <iostream>
#include <mutex>

#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/coupler.hpp"
#include "gcm/model.hpp"
#include "gcm/output.hpp"
#include "net/arctic_model.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hyades;
  constexpr const char* kUsage = "coupled_climate [steps] [couple_every] [outdir]";
  const int steps =
      argc > 1 ? support::checked_int(argv[1], "steps", kUsage) : 24;
  const int couple_every =
      argc > 2 ? support::checked_int(argv[2], "couple_every", kUsage) : 6;
  const std::string outdir = argc > 3 ? argv[3] : "coupled_output";
  std::filesystem::create_directories(outdir);

  // The full cluster: 16 two-way SMPs = 32 processors.
  const net::ArcticModel arctic(16);
  cluster::MachineConfig machine;
  machine.smp_count = 16;
  machine.procs_per_smp = 2;
  machine.interconnect = &arctic;
  cluster::Runtime cluster(machine);

  const int half = machine.nranks() / 2;  // 16 processors per isomorph
  const gcm::ModelConfig ocean_cfg = gcm::ocean_preset(4, 4);
  const gcm::ModelConfig atmos_cfg = gcm::atmosphere_preset(4, 4);

  std::mutex io;
  double ocean_gflops = 0, atmos_gflops = 0;
  cluster.run([&](cluster::RankContext& ctx) {
    const bool ocean_side = ctx.rank() < half;
    comm::Comm comm(ctx, ocean_side ? 0 : half, half);
    gcm::Model model(ocean_side ? ocean_cfg : atmos_cfg, comm);
    model.initialize();
    gcm::Coupler coupler(ctx, /*ocean_base=*/0, /*atmos_base=*/half, half);
    gcm::SurfaceForcing forcing;

    for (int s = 0; s < steps; ++s) {
      if (s % couple_every == 0) coupler.exchange_boundary(model, forcing);
      const gcm::StepStats st = model.step(&forcing);
      if (!st.cg_converged) {
        throw std::runtime_error("pressure solver failed to converge");
      }
    }

    // Component diagnostics + Figure-9-analog output fields.
    const double ke = model.kinetic_energy();
    const double mt = model.mean_theta();
    const auto theta = model.gather_theta(ocean_side ? 0 : 2);
    const auto speed = model.gather_speed(ocean_side ? 0 : 2);
    const double rank_gflops =
        ctx.accounting().flops / std::max(ctx.clock().now(), 1.0) / 1.0e3;

    std::lock_guard<std::mutex> lock(io);
    (ocean_side ? ocean_gflops : atmos_gflops) += rank_gflops;
    if (comm.group_rank() == 0) {
      const char* name = ocean_side ? "ocean" : "atmosphere";
      std::cout << name << ": " << steps << " steps, mean theta "
                << Table::fmt(mt, 2) << (ocean_side ? " degC" : " K")
                << ", KE " << Table::fmt(ke, 3) << " J, Ni ~ "
                << Table::fmt(model.stepper().observables().mean_ni(), 1)
                << ", virtual time "
                << Table::fmt(us_to_seconds(ctx.clock().now()), 2) << " s\n";
      gcm::write_pgm(outdir + "/" + name + "_theta.pgm", theta);
      gcm::write_csv(outdir + "/" + name + "_theta.csv", theta);
      gcm::write_pgm(outdir + "/" + name + "_speed.pgm", speed);
      gcm::write_csv(outdir + "/" + name + "_speed.csv", speed);
      std::cout << name << " surface fields written to " << outdir << "/"
                << name << "_{theta,speed}.{pgm,csv}\n";
    }
  });

  std::cout << "\nsustained combined floating-point performance: "
            << Table::fmt(ocean_gflops + atmos_gflops, 2)
            << " GFlop/s (paper production runs: 1.6-1.8 GFlop/s with the "
               "full-physics kernel; see bench_fig10_sustained)\n";
  std::cout << "turn-around reading (Section 6): on a dedicated personal "
               "supercomputer the turn-around time IS the CPU time.\n";
  return 0;
}
