// Wind-driven ocean gyres in a closed basin -- the classic test problem
// for ocean general circulation dynamics, run on the Hyades cluster
// model.  A meridional land strip closes the periodic channel; the
// banded zonal wind stress then spins up subtropical/subpolar gyres with
// a western intensification (the Gulf-Stream-like boundary current that
// makes this a nontrivial exercise of masks, walls and the elliptic
// solver in a multiply-bounded domain).
//
//   ./gyre [steps] [outdir] [--trace out.trace.json]
#include <filesystem>
#include <iostream>
#include <mutex>
#include <vector>

#include "cluster/report.hpp"
#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "gcm/output.hpp"
#include "net/arctic_model.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hyades;
  constexpr const char* kUsage = "gyre [steps] [outdir] [--trace out.trace.json]";
  int steps = 2160;  // ~2 months
  std::string outdir = "gyre_output";
  const char* trace_out = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (positional++ == 0) {
      steps = support::checked_int(argv[i], "steps", kUsage);
    } else {
      outdir = argv[i];
    }
  }
  std::filesystem::create_directories(outdir);

  const net::ArcticModel arctic;
  cluster::MachineConfig machine;
  machine.smp_count = 8;
  machine.procs_per_smp = 2;
  machine.interconnect = &arctic;
  cluster::Runtime cluster(machine);

  gcm::ModelConfig cfg = gcm::ocean_preset(4, 4);
  cfg.nz = 8;  // a lighter vertical grid -- the gyre is mostly barotropic
  cfg.topography = gcm::ModelConfig::Topography::kBasin;
  cfg.wind_tau0 = 0.15;
  cfg.dt = 2400.0;     // the spin-up takes simulated months
  cfg.visc_h = 8.0e5;  // resolve the Munk layer at 2.8 degrees
  cfg.validate();

  std::mutex io;
  std::vector<cluster::Tracer> tracers(
      trace_out ? static_cast<std::size_t>(machine.nranks()) : 0);
  cluster.run([&](cluster::RankContext& ctx) {
    if (trace_out != nullptr) {
      ctx.set_tracer(&tracers[static_cast<std::size_t>(ctx.rank())]);
    }
    comm::Comm comm(ctx);
    gcm::Model model(cfg, comm);
    model.initialize();
    for (int s = 0; s < steps; ++s) {
      const gcm::StepStats st = model.step();
      if (!st.cg_converged) {
        throw std::runtime_error("pressure solver failed to converge");
      }
      if ((s + 1) % (steps / 4) == 0) {
        const double ke = model.kinetic_energy();
        if (comm.group_rank() == 0) {
          std::lock_guard<std::mutex> lock(io);
          std::cout << "step " << (s + 1) << ": KE = " << Table::fmt(ke, 3)
                    << " J (spinning up)\n";
        }
      }
    }
    const auto speed = model.gather_speed(0);
    const auto ps = model.gather_ps();
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(io);
      // Western intensification check: the fastest surface currents
      // should hug the basin's western wall (low-i side of the interior).
      std::size_t fastest_i = 0;
      double fastest = 0.0;
      for (std::size_t i = 0; i < speed.nx(); ++i) {
        for (std::size_t j = 0; j < speed.ny(); ++j) {
          if (speed(i, j) > fastest) {
            fastest = speed(i, j);
            fastest_i = i;
          }
        }
      }
      std::cout << "\npeak surface current " << Table::fmt(fastest, 3)
                << " m/s at i = " << fastest_i << " of " << speed.nx()
                << " (basin interior starts near i ~ "
                << static_cast<int>(0.06 * static_cast<double>(speed.nx()))
                << ": western "
                << "boundary current)\n";
      std::cout << "\nsurface current speed:\n" << gcm::ascii_map(speed);
      gcm::write_pgm(outdir + "/gyre_speed.pgm", speed);
      gcm::write_pgm(outdir + "/gyre_ps.pgm", ps);
      gcm::write_csv(outdir + "/gyre_speed.csv", speed);
      std::cout << "fields written to " << outdir << "/\n";
    }
  });

  if (trace_out != nullptr) {
    std::vector<const cluster::Tracer*> ptrs;
    ptrs.reserve(tracers.size());
    for (const auto& t : tracers) ptrs.push_back(&t);
    cluster::write_trace_json(trace_out, ptrs, machine.procs_per_smp);
    std::cout << "\nwrote Chrome trace (ui.perfetto.dev): " << trace_out
              << "\n";
    print_wait_attribution(
        std::cout, cluster::wait_attribution(ptrs, cluster.accounting()),
        static_cast<double>(steps));
  }
  return 0;
}
