# Empty dependencies file for sweeps_tests.
# This may be replaced when dependencies are built.
