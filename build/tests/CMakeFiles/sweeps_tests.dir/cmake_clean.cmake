file(REMOVE_RECURSE
  "CMakeFiles/sweeps_tests.dir/sweeps/sweeps_test.cpp.o"
  "CMakeFiles/sweeps_tests.dir/sweeps/sweeps_test.cpp.o.d"
  "sweeps_tests"
  "sweeps_tests.pdb"
  "sweeps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweeps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
