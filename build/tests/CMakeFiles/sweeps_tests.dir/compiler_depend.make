# Empty compiler generated dependencies file for sweeps_tests.
# This may be replaced when dependencies are built.
