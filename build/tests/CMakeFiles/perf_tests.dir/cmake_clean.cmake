file(REMOVE_RECURSE
  "CMakeFiles/perf_tests.dir/perf/calibrate_test.cpp.o"
  "CMakeFiles/perf_tests.dir/perf/calibrate_test.cpp.o.d"
  "CMakeFiles/perf_tests.dir/perf/perf_model_test.cpp.o"
  "CMakeFiles/perf_tests.dir/perf/perf_model_test.cpp.o.d"
  "perf_tests"
  "perf_tests.pdb"
  "perf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
