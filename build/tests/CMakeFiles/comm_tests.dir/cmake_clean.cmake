file(REMOVE_RECURSE
  "CMakeFiles/comm_tests.dir/comm/exchange_test.cpp.o"
  "CMakeFiles/comm_tests.dir/comm/exchange_test.cpp.o.d"
  "CMakeFiles/comm_tests.dir/comm/global_sum_test.cpp.o"
  "CMakeFiles/comm_tests.dir/comm/global_sum_test.cpp.o.d"
  "CMakeFiles/comm_tests.dir/comm/portable_test.cpp.o"
  "CMakeFiles/comm_tests.dir/comm/portable_test.cpp.o.d"
  "comm_tests"
  "comm_tests.pdb"
  "comm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
