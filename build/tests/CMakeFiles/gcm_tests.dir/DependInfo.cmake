
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gcm/advection_mixing_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/advection_mixing_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/advection_mixing_test.cpp.o.d"
  "/root/repo/tests/gcm/checkpoint_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/checkpoint_test.cpp.o.d"
  "/root/repo/tests/gcm/coupled_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/coupled_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/coupled_test.cpp.o.d"
  "/root/repo/tests/gcm/decomp_grid_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/decomp_grid_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/decomp_grid_test.cpp.o.d"
  "/root/repo/tests/gcm/elliptic_cg_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/elliptic_cg_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/elliptic_cg_test.cpp.o.d"
  "/root/repo/tests/gcm/gyre_physics_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/gyre_physics_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/gyre_physics_test.cpp.o.d"
  "/root/repo/tests/gcm/halo_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/halo_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/halo_test.cpp.o.d"
  "/root/repo/tests/gcm/kernels_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/kernels_test.cpp.o.d"
  "/root/repo/tests/gcm/model_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/model_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/model_test.cpp.o.d"
  "/root/repo/tests/gcm/nonhydro_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/nonhydro_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/nonhydro_test.cpp.o.d"
  "/root/repo/tests/gcm/output_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/output_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/output_test.cpp.o.d"
  "/root/repo/tests/gcm/physics_test.cpp" "tests/CMakeFiles/gcm_tests.dir/gcm/physics_test.cpp.o" "gcc" "tests/CMakeFiles/gcm_tests.dir/gcm/physics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcm/CMakeFiles/hyades_gcm.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hyades_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hyades_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hyades_net.dir/DependInfo.cmake"
  "/root/repo/build/src/startx/CMakeFiles/hyades_startx.dir/DependInfo.cmake"
  "/root/repo/build/src/arctic/CMakeFiles/hyades_arctic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyades_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hyades_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
