file(REMOVE_RECURSE
  "CMakeFiles/gcm_tests.dir/gcm/advection_mixing_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/advection_mixing_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/checkpoint_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/checkpoint_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/coupled_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/coupled_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/decomp_grid_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/decomp_grid_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/elliptic_cg_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/elliptic_cg_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/gyre_physics_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/gyre_physics_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/halo_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/halo_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/kernels_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/kernels_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/model_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/model_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/nonhydro_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/nonhydro_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/output_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/output_test.cpp.o.d"
  "CMakeFiles/gcm_tests.dir/gcm/physics_test.cpp.o"
  "CMakeFiles/gcm_tests.dir/gcm/physics_test.cpp.o.d"
  "gcm_tests"
  "gcm_tests.pdb"
  "gcm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
