# Empty compiler generated dependencies file for gcm_tests.
# This may be replaced when dependencies are built.
