file(REMOVE_RECURSE
  "CMakeFiles/startx_tests.dir/startx/niu_test.cpp.o"
  "CMakeFiles/startx_tests.dir/startx/niu_test.cpp.o.d"
  "startx_tests"
  "startx_tests.pdb"
  "startx_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/startx_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
