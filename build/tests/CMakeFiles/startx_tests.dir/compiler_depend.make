# Empty compiler generated dependencies file for startx_tests.
# This may be replaced when dependencies are built.
