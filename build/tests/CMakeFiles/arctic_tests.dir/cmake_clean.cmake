file(REMOVE_RECURSE
  "CMakeFiles/arctic_tests.dir/arctic/crc_test.cpp.o"
  "CMakeFiles/arctic_tests.dir/arctic/crc_test.cpp.o.d"
  "CMakeFiles/arctic_tests.dir/arctic/fabric_test.cpp.o"
  "CMakeFiles/arctic_tests.dir/arctic/fabric_test.cpp.o.d"
  "CMakeFiles/arctic_tests.dir/arctic/packet_test.cpp.o"
  "CMakeFiles/arctic_tests.dir/arctic/packet_test.cpp.o.d"
  "CMakeFiles/arctic_tests.dir/arctic/route_test.cpp.o"
  "CMakeFiles/arctic_tests.dir/arctic/route_test.cpp.o.d"
  "arctic_tests"
  "arctic_tests.pdb"
  "arctic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arctic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
