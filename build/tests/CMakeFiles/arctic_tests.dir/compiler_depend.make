# Empty compiler generated dependencies file for arctic_tests.
# This may be replaced when dependencies are built.
