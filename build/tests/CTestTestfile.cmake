# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/arctic_tests[1]_include.cmake")
include("/root/repo/build/tests/startx_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build/tests/comm_tests[1]_include.cmake")
include("/root/repo/build/tests/gcm_tests[1]_include.cmake")
include("/root/repo/build/tests/perf_tests[1]_include.cmake")
include("/root/repo/build/tests/sweeps_tests[1]_include.cmake")
include("/root/repo/build/tests/fault_tests[1]_include.cmake")
