
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig02_logp.cpp" "bench/CMakeFiles/bench_fig02_logp.dir/bench_fig02_logp.cpp.o" "gcc" "bench/CMakeFiles/bench_fig02_logp.dir/bench_fig02_logp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hyades_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hyades_support.dir/DependInfo.cmake"
  "/root/repo/build/src/startx/CMakeFiles/hyades_startx.dir/DependInfo.cmake"
  "/root/repo/build/src/arctic/CMakeFiles/hyades_arctic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyades_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
