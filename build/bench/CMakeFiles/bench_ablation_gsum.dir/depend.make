# Empty dependencies file for bench_ablation_gsum.
# This may be replaced when dependencies are built.
