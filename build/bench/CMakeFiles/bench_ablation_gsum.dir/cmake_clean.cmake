file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gsum.dir/bench_ablation_gsum.cpp.o"
  "CMakeFiles/bench_ablation_gsum.dir/bench_ablation_gsum.cpp.o.d"
  "bench_ablation_gsum"
  "bench_ablation_gsum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gsum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
