# Empty dependencies file for bench_sec53_validation.
# This may be replaced when dependencies are built.
