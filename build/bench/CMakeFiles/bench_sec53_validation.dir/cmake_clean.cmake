file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_validation.dir/bench_sec53_validation.cpp.o"
  "CMakeFiles/bench_sec53_validation.dir/bench_sec53_validation.cpp.o.d"
  "bench_sec53_validation"
  "bench_sec53_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
