file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_params.dir/bench_fig11_params.cpp.o"
  "CMakeFiles/bench_fig11_params.dir/bench_fig11_params.cpp.o.d"
  "bench_fig11_params"
  "bench_fig11_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
