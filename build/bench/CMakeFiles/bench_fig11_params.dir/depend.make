# Empty dependencies file for bench_fig11_params.
# This may be replaced when dependencies are built.
