# Empty dependencies file for bench_ablation_mixmode.
# This may be replaced when dependencies are built.
