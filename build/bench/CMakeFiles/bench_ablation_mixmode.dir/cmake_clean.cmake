file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mixmode.dir/bench_ablation_mixmode.cpp.o"
  "CMakeFiles/bench_ablation_mixmode.dir/bench_ablation_mixmode.cpp.o.d"
  "bench_ablation_mixmode"
  "bench_ablation_mixmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mixmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
