file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_gsum.dir/bench_sec42_gsum.cpp.o"
  "CMakeFiles/bench_sec42_gsum.dir/bench_sec42_gsum.cpp.o.d"
  "bench_sec42_gsum"
  "bench_sec42_gsum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_gsum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
