file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overcompute.dir/bench_ablation_overcompute.cpp.o"
  "CMakeFiles/bench_ablation_overcompute.dir/bench_ablation_overcompute.cpp.o.d"
  "bench_ablation_overcompute"
  "bench_ablation_overcompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overcompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
