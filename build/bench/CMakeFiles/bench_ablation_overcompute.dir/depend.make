# Empty dependencies file for bench_ablation_overcompute.
# This may be replaced when dependencies are built.
