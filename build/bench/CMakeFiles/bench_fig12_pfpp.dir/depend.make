# Empty dependencies file for bench_fig12_pfpp.
# This may be replaced when dependencies are built.
