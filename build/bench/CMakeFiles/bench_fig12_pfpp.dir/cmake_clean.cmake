file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_pfpp.dir/bench_fig12_pfpp.cpp.o"
  "CMakeFiles/bench_fig12_pfpp.dir/bench_fig12_pfpp.cpp.o.d"
  "bench_fig12_pfpp"
  "bench_fig12_pfpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pfpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
