file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nonhydro.dir/bench_ablation_nonhydro.cpp.o"
  "CMakeFiles/bench_ablation_nonhydro.dir/bench_ablation_nonhydro.cpp.o.d"
  "bench_ablation_nonhydro"
  "bench_ablation_nonhydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nonhydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
