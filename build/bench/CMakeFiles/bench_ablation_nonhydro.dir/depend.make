# Empty dependencies file for bench_ablation_nonhydro.
# This may be replaced when dependencies are built.
