file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sustained.dir/bench_fig10_sustained.cpp.o"
  "CMakeFiles/bench_fig10_sustained.dir/bench_fig10_sustained.cpp.o.d"
  "bench_fig10_sustained"
  "bench_fig10_sustained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sustained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
