# Empty dependencies file for bench_fig10_sustained.
# This may be replaced when dependencies are built.
