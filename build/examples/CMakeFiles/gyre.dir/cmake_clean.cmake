file(REMOVE_RECURSE
  "CMakeFiles/gyre.dir/gyre.cpp.o"
  "CMakeFiles/gyre.dir/gyre.cpp.o.d"
  "gyre"
  "gyre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gyre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
