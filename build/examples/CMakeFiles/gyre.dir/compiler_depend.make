# Empty compiler generated dependencies file for gyre.
# This may be replaced when dependencies are built.
