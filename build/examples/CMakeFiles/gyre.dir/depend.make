# Empty dependencies file for gyre.
# This may be replaced when dependencies are built.
