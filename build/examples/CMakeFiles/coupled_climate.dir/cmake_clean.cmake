file(REMOVE_RECURSE
  "CMakeFiles/coupled_climate.dir/coupled_climate.cpp.o"
  "CMakeFiles/coupled_climate.dir/coupled_climate.cpp.o.d"
  "coupled_climate"
  "coupled_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
