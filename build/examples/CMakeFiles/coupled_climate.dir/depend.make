# Empty dependencies file for coupled_climate.
# This may be replaced when dependencies are built.
