file(REMOVE_RECURSE
  "CMakeFiles/hyades_startx.dir/niu.cpp.o"
  "CMakeFiles/hyades_startx.dir/niu.cpp.o.d"
  "libhyades_startx.a"
  "libhyades_startx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_startx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
