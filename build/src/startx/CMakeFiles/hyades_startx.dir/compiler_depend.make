# Empty compiler generated dependencies file for hyades_startx.
# This may be replaced when dependencies are built.
