file(REMOVE_RECURSE
  "libhyades_startx.a"
)
