# Empty compiler generated dependencies file for hyades_support.
# This may be replaced when dependencies are built.
