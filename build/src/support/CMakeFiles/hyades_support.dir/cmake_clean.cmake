file(REMOVE_RECURSE
  "CMakeFiles/hyades_support.dir/logging.cpp.o"
  "CMakeFiles/hyades_support.dir/logging.cpp.o.d"
  "CMakeFiles/hyades_support.dir/stats.cpp.o"
  "CMakeFiles/hyades_support.dir/stats.cpp.o.d"
  "CMakeFiles/hyades_support.dir/table.cpp.o"
  "CMakeFiles/hyades_support.dir/table.cpp.o.d"
  "libhyades_support.a"
  "libhyades_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
