file(REMOVE_RECURSE
  "libhyades_support.a"
)
