file(REMOVE_RECURSE
  "CMakeFiles/hyades_net.dir/arctic_model.cpp.o"
  "CMakeFiles/hyades_net.dir/arctic_model.cpp.o.d"
  "CMakeFiles/hyades_net.dir/ethernet.cpp.o"
  "CMakeFiles/hyades_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/hyades_net.dir/logp.cpp.o"
  "CMakeFiles/hyades_net.dir/logp.cpp.o.d"
  "libhyades_net.a"
  "libhyades_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
