file(REMOVE_RECURSE
  "libhyades_net.a"
)
