# Empty compiler generated dependencies file for hyades_net.
# This may be replaced when dependencies are built.
