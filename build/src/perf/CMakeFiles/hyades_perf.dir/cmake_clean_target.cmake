file(REMOVE_RECURSE
  "libhyades_perf.a"
)
