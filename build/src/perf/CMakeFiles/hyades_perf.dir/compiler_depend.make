# Empty compiler generated dependencies file for hyades_perf.
# This may be replaced when dependencies are built.
