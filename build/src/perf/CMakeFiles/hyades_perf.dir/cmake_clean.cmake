file(REMOVE_RECURSE
  "CMakeFiles/hyades_perf.dir/calibrate.cpp.o"
  "CMakeFiles/hyades_perf.dir/calibrate.cpp.o.d"
  "CMakeFiles/hyades_perf.dir/perf_model.cpp.o"
  "CMakeFiles/hyades_perf.dir/perf_model.cpp.o.d"
  "libhyades_perf.a"
  "libhyades_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
