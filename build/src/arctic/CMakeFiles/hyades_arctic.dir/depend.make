# Empty dependencies file for hyades_arctic.
# This may be replaced when dependencies are built.
