file(REMOVE_RECURSE
  "CMakeFiles/hyades_arctic.dir/crc.cpp.o"
  "CMakeFiles/hyades_arctic.dir/crc.cpp.o.d"
  "CMakeFiles/hyades_arctic.dir/fabric.cpp.o"
  "CMakeFiles/hyades_arctic.dir/fabric.cpp.o.d"
  "CMakeFiles/hyades_arctic.dir/packet.cpp.o"
  "CMakeFiles/hyades_arctic.dir/packet.cpp.o.d"
  "CMakeFiles/hyades_arctic.dir/route.cpp.o"
  "CMakeFiles/hyades_arctic.dir/route.cpp.o.d"
  "CMakeFiles/hyades_arctic.dir/router.cpp.o"
  "CMakeFiles/hyades_arctic.dir/router.cpp.o.d"
  "libhyades_arctic.a"
  "libhyades_arctic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_arctic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
