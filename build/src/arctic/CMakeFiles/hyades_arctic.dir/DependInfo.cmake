
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arctic/crc.cpp" "src/arctic/CMakeFiles/hyades_arctic.dir/crc.cpp.o" "gcc" "src/arctic/CMakeFiles/hyades_arctic.dir/crc.cpp.o.d"
  "/root/repo/src/arctic/fabric.cpp" "src/arctic/CMakeFiles/hyades_arctic.dir/fabric.cpp.o" "gcc" "src/arctic/CMakeFiles/hyades_arctic.dir/fabric.cpp.o.d"
  "/root/repo/src/arctic/packet.cpp" "src/arctic/CMakeFiles/hyades_arctic.dir/packet.cpp.o" "gcc" "src/arctic/CMakeFiles/hyades_arctic.dir/packet.cpp.o.d"
  "/root/repo/src/arctic/route.cpp" "src/arctic/CMakeFiles/hyades_arctic.dir/route.cpp.o" "gcc" "src/arctic/CMakeFiles/hyades_arctic.dir/route.cpp.o.d"
  "/root/repo/src/arctic/router.cpp" "src/arctic/CMakeFiles/hyades_arctic.dir/router.cpp.o" "gcc" "src/arctic/CMakeFiles/hyades_arctic.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hyades_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hyades_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
