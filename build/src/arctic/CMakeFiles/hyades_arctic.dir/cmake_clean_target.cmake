file(REMOVE_RECURSE
  "libhyades_arctic.a"
)
