# CMake generated Testfile for 
# Source directory: /root/repo/src/arctic
# Build directory: /root/repo/build/src/arctic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
