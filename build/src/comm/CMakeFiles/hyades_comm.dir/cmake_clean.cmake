file(REMOVE_RECURSE
  "CMakeFiles/hyades_comm.dir/comm.cpp.o"
  "CMakeFiles/hyades_comm.dir/comm.cpp.o.d"
  "CMakeFiles/hyades_comm.dir/portable.cpp.o"
  "CMakeFiles/hyades_comm.dir/portable.cpp.o.d"
  "libhyades_comm.a"
  "libhyades_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
