# Empty dependencies file for hyades_comm.
# This may be replaced when dependencies are built.
