file(REMOVE_RECURSE
  "libhyades_comm.a"
)
