# Empty compiler generated dependencies file for hyades_gcm.
# This may be replaced when dependencies are built.
