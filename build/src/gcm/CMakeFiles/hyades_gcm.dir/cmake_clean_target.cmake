file(REMOVE_RECURSE
  "libhyades_gcm.a"
)
