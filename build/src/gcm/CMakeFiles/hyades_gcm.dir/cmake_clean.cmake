file(REMOVE_RECURSE
  "CMakeFiles/hyades_gcm.dir/cg.cpp.o"
  "CMakeFiles/hyades_gcm.dir/cg.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/cg3.cpp.o"
  "CMakeFiles/hyades_gcm.dir/cg3.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/config.cpp.o"
  "CMakeFiles/hyades_gcm.dir/config.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/coupler.cpp.o"
  "CMakeFiles/hyades_gcm.dir/coupler.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/decomp.cpp.o"
  "CMakeFiles/hyades_gcm.dir/decomp.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/elliptic.cpp.o"
  "CMakeFiles/hyades_gcm.dir/elliptic.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/elliptic3.cpp.o"
  "CMakeFiles/hyades_gcm.dir/elliptic3.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/grid.cpp.o"
  "CMakeFiles/hyades_gcm.dir/grid.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/halo.cpp.o"
  "CMakeFiles/hyades_gcm.dir/halo.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/kernels.cpp.o"
  "CMakeFiles/hyades_gcm.dir/kernels.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/model.cpp.o"
  "CMakeFiles/hyades_gcm.dir/model.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/output.cpp.o"
  "CMakeFiles/hyades_gcm.dir/output.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/physics.cpp.o"
  "CMakeFiles/hyades_gcm.dir/physics.cpp.o.d"
  "CMakeFiles/hyades_gcm.dir/step.cpp.o"
  "CMakeFiles/hyades_gcm.dir/step.cpp.o.d"
  "libhyades_gcm.a"
  "libhyades_gcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_gcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
