
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcm/cg.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/cg.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/cg.cpp.o.d"
  "/root/repo/src/gcm/cg3.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/cg3.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/cg3.cpp.o.d"
  "/root/repo/src/gcm/config.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/config.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/config.cpp.o.d"
  "/root/repo/src/gcm/coupler.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/coupler.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/coupler.cpp.o.d"
  "/root/repo/src/gcm/decomp.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/decomp.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/decomp.cpp.o.d"
  "/root/repo/src/gcm/elliptic.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/elliptic.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/elliptic.cpp.o.d"
  "/root/repo/src/gcm/elliptic3.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/elliptic3.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/elliptic3.cpp.o.d"
  "/root/repo/src/gcm/grid.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/grid.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/grid.cpp.o.d"
  "/root/repo/src/gcm/halo.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/halo.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/halo.cpp.o.d"
  "/root/repo/src/gcm/kernels.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/kernels.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/kernels.cpp.o.d"
  "/root/repo/src/gcm/model.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/model.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/model.cpp.o.d"
  "/root/repo/src/gcm/output.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/output.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/output.cpp.o.d"
  "/root/repo/src/gcm/physics.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/physics.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/physics.cpp.o.d"
  "/root/repo/src/gcm/step.cpp" "src/gcm/CMakeFiles/hyades_gcm.dir/step.cpp.o" "gcc" "src/gcm/CMakeFiles/hyades_gcm.dir/step.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/hyades_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hyades_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hyades_support.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hyades_net.dir/DependInfo.cmake"
  "/root/repo/build/src/startx/CMakeFiles/hyades_startx.dir/DependInfo.cmake"
  "/root/repo/build/src/arctic/CMakeFiles/hyades_arctic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyades_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
