# Empty dependencies file for hyades_cluster.
# This may be replaced when dependencies are built.
