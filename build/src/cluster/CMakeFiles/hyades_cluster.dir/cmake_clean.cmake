file(REMOVE_RECURSE
  "CMakeFiles/hyades_cluster.dir/message_bus.cpp.o"
  "CMakeFiles/hyades_cluster.dir/message_bus.cpp.o.d"
  "CMakeFiles/hyades_cluster.dir/runtime.cpp.o"
  "CMakeFiles/hyades_cluster.dir/runtime.cpp.o.d"
  "CMakeFiles/hyades_cluster.dir/trace.cpp.o"
  "CMakeFiles/hyades_cluster.dir/trace.cpp.o.d"
  "libhyades_cluster.a"
  "libhyades_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
