file(REMOVE_RECURSE
  "libhyades_cluster.a"
)
