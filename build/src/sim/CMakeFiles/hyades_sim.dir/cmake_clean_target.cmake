file(REMOVE_RECURSE
  "libhyades_sim.a"
)
