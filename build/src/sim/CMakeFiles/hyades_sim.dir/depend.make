# Empty dependencies file for hyades_sim.
# This may be replaced when dependencies are built.
