file(REMOVE_RECURSE
  "CMakeFiles/hyades_sim.dir/scheduler.cpp.o"
  "CMakeFiles/hyades_sim.dir/scheduler.cpp.o.d"
  "libhyades_sim.a"
  "libhyades_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyades_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
